// Replicated-experiment runner: N independent seeded replicates fanned out
// over a thread pool, results collected in replicate order regardless of
// scheduling.  The per-replicate seed is derived from the master seed, so a
// sweep is reproducible from a single integer and independent of the thread
// count.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "analysis/thread_pool.hpp"
#include "common/rng.hpp"

namespace lgg::analysis {

/// Runs `run(seed_k, k)` for k in [0, replicates); seed_k is derived from
/// `master_seed`.  Results are returned indexed by k.
template <typename Result>
std::vector<Result> replicate(ThreadPool& pool, std::size_t replicates,
                              std::uint64_t master_seed,
                              const std::function<Result(std::uint64_t,
                                                         std::size_t)>& run) {
  std::vector<Result> results(replicates);
  parallel_for(pool, replicates, [&](std::size_t k) {
    results[k] = run(derive_seed(master_seed, k), k);
  });
  return results;
}

/// Wall-clock stopwatch for bench reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lgg::analysis
