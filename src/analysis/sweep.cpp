#include "analysis/sweep.hpp"

#include <algorithm>
#include <set>
#include <string_view>
#include <thread>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace lgg::analysis {

Sweep& Sweep::add_range(double lo, double hi, int count) {
  LGG_REQUIRE(count >= 1, "add_range: count >= 1");
  LGG_REQUIRE(lo <= hi, "add_range: lo <= hi");
  for (int i = 0; i < count; ++i) {
    const double p =
        count == 1 ? lo
                   : lo + (hi - lo) * static_cast<double>(i) /
                         static_cast<double>(count - 1);
    // Nearby parameters can round to the same printed label; suffix the
    // point index so every row stays distinguishable in tables and CSV.
    std::string label = Table::format_cell(p);
    const auto taken = [this](const std::string& l) {
      return std::any_of(points_.begin(), points_.end(),
                         [&l](const SweepPoint& pt) { return pt.label == l; });
    };
    if (taken(label)) {
      label += "#" + std::to_string(points_.size());
    }
    add_point(std::move(label), p);
  }
  return *this;
}

std::vector<SweepRow> Sweep::run(ThreadPool& pool, int replicates,
                                 std::uint64_t master_seed,
                                 const Measure& measure,
                                 const RetryPolicy& retry) const {
  LGG_REQUIRE(replicates >= 1, "Sweep::run: replicates >= 1");
  LGG_REQUIRE(static_cast<bool>(measure), "Sweep::run: empty measure");
  LGG_REQUIRE(retry.max_attempts >= 1, "Sweep::run: max_attempts >= 1");
  {
    std::set<std::string_view> labels;
    for (const SweepPoint& pt : points_) {
      LGG_REQUIRE(labels.insert(pt.label).second,
                  "Sweep::run: duplicate point label '" + pt.label + "'");
    }
  }
  std::vector<SweepRow> rows(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    rows[i].point = points_[i];
  }
  // Flatten (point, replicate) into one parallel index space so small
  // sweeps still use every worker.  Results land in flat buffers; rows are
  // assembled afterwards so a throwing replicate only loses its own cell.
  const std::size_t total =
      points_.size() * static_cast<std::size_t>(replicates);
  std::vector<double> values(total, 0.0);
  std::vector<char> ok(total, 0);
  std::vector<std::string> errors(total);
  std::vector<int> attempts(total, 0);
  parallel_for(pool, total, [&](std::size_t flat) {
    auto backoff = retry.backoff_initial;
    for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
      if (attempt > 0 && backoff.count() > 0) {
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, retry.backoff_max);
      }
      // Attempt 0 keeps the historical flat-index seed; retries shift by
      // whole `total` strides, so they collide with no other replicate's
      // stream at any attempt.
      const std::size_t p = flat / static_cast<std::size_t>(replicates);
      const std::uint64_t seed = derive_seed(
          master_seed, static_cast<std::uint64_t>(
                           flat + total * static_cast<std::size_t>(attempt)));
      ++attempts[flat];
      try {
        values[flat] = measure(points_[p].parameter, seed);
        ok[flat] = 1;
        return;
      } catch (const std::exception& e) {
        errors[flat] = e.what();
      } catch (...) {
        errors[flat] = "unknown exception";
      }
    }
  });
  for (std::size_t p = 0; p < points_.size(); ++p) {
    SweepRow& row = rows[p];
    for (int k = 0; k < replicates; ++k) {
      const std::size_t flat =
          p * static_cast<std::size_t>(replicates) +
          static_cast<std::size_t>(k);
      row.attempts += attempts[flat];
      if (ok[flat] != 0) {
        row.samples.push_back(values[flat]);
      } else {
        ++row.failed_replicates;
        row.failures.push_back({k, errors[flat], attempts[flat]});
      }
    }
    row.summary = summarize(row.samples);
  }
  return rows;
}

Table rows_to_table(const std::vector<SweepRow>& rows,
                    const std::string& parameter_header,
                    const std::string& value_header) {
  Table table({parameter_header, value_header + " mean",
               value_header + " stddev", "min", "max", "replicates",
               "failed", "attempts"});
  for (const SweepRow& row : rows) {
    table.add(row.point.label, row.summary.mean, row.summary.stddev,
              row.summary.min, row.summary.max,
              static_cast<std::int64_t>(row.summary.count),
              static_cast<std::int64_t>(row.failed_replicates),
              static_cast<std::int64_t>(row.attempts));
  }
  return table;
}

}  // namespace lgg::analysis
