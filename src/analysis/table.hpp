// Fixed-width console table printer: the bench binaries use it to emit the
// scientific series ("the table the paper would have shown") next to the
// google-benchmark timing output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace lgg::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: mixed-type row, numbers formatted compactly.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row({format_cell(cells)...});
  }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  static std::string format_cell(const std::string& v) { return v; }
  static std::string format_cell(const char* v) { return v; }
  static std::string format_cell(bool v) { return v ? "yes" : "no"; }
  static std::string format_cell(double v);
  template <typename T>
  static std::string format_cell(const T& v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lgg::analysis
