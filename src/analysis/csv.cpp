#include "analysis/csv.hpp"

#include <ostream>
#include <sstream>

namespace lgg::analysis {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  bool first = true;
  for (const auto& f : fields) {
    if (!first) *os_ << ',';
    *os_ << csv_escape(f);
    first = false;
  }
  *os_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  std::vector<std::string> copy;
  copy.reserve(fields.size());
  for (const auto f : fields) copy.emplace_back(f);
  write_row(copy);
}

std::string CsvWriter::format_value(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace lgg::analysis
