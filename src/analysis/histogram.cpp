#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/require.hpp"

namespace lgg::analysis {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  LGG_REQUIRE(lo < hi, "Histogram: lo < hi");
  LGG_REQUIRE(bins >= 1, "Histogram: bins >= 1");
}

void Histogram::add(double value) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((value - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (const double v : values) add(v);
}

std::int64_t Histogram::count(std::size_t bin) const {
  LGG_REQUIRE(bin < counts_.size(), "Histogram: bad bin");
  return counts_[bin];
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  LGG_REQUIRE(bin < counts_.size(), "Histogram: bad bin");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(bin),
          lo_ + width * static_cast<double>(bin + 1)};
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

std::string Histogram::to_string(int max_width) const {
  LGG_REQUIRE(max_width >= 1, "Histogram: max_width >= 1");
  std::int64_t peak = 1;
  for (const std::int64_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto [lo, hi] = bin_range(b);
    const auto bar = static_cast<int>(
        static_cast<double>(counts_[b]) / static_cast<double>(peak) *
        max_width);
    os << '[' << lo << ", " << hi << "): " << std::string(bar, '#') << ' '
       << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace lgg::analysis
