#include "analysis/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"

namespace lgg::analysis {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  LGG_REQUIRE(static_cast<bool>(task), "submit: empty task");
  {
    std::lock_guard lock(mutex_);
    LGG_REQUIRE(!stopping_, "submit: pool is shutting down");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_task_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (error != nullptr && first_error_ == nullptr) {
        first_error_ = std::move(error);
      }
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t shards = std::min(count, pool.thread_count());
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto failed = std::make_shared<std::atomic<bool>>(false);
  for (std::size_t s = 0; s < shards; ++s) {
    pool.submit([next, failed, count, &body] {
      for (std::size_t i = next->fetch_add(1);
           i < count && !failed->load(std::memory_order_relaxed);
           i = next->fetch_add(1)) {
        try {
          body(i);
        } catch (...) {
          failed->store(true, std::memory_order_relaxed);
          throw;
        }
      }
    });
  }
  pool.wait_idle();
}

void parallel_for_chunked(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t chunks = std::min(count, pool.thread_count());
  const std::size_t base = count / chunks;
  const std::size_t extra = count % chunks;  // first `extra` chunks get +1
  auto failed = std::make_shared<std::atomic<bool>>(false);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + size;
    pool.submit([failed, begin, end, &body] {
      if (failed->load(std::memory_order_relaxed)) return;
      try {
        body(begin, end);
      } catch (...) {
        failed->store(true, std::memory_order_relaxed);
        throw;
      }
    });
    begin = end;
  }
  pool.wait_idle();
}

}  // namespace lgg::analysis
