// Shared-memory work pool for experiment replication.
//
// Replicates of a stochastic experiment are embarrassingly parallel; the
// pool fans a counted loop out over hardware threads (MPI/OpenMP-style
// static-dynamic hybrid: one atomic counter, workers pull indices).  Each
// replicate derives its own RNG stream from the master seed, so results are
// bitwise independent of the thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lgg::analysis {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task; it may run on any worker.  An exception escaping the
  /// task is captured (first one wins) and rethrown by the next wait_idle.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  If any task threw
  /// since the last wait_idle, rethrows the first captured exception (and
  /// clears it, so the pool stays usable).
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::exception_ptr first_error_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool's threads and blocks
/// until all iterations complete.  `body` must be thread-safe across
/// distinct indices.  If an iteration throws, the remaining indices are
/// abandoned cooperatively and the first exception is rethrown to the
/// caller; the pool remains usable afterwards.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Static-chunked variant: partitions [0, count) into min(count, threads)
/// contiguous chunks and runs body(begin, end) once per chunk.  The chunk
/// bounds are exact: chunks cover [0, count) disjointly, no chunk is empty
/// (in particular when count < threads, exactly `count` one-element chunks
/// are spawned — never a begin == end task), and the first count % chunks
/// chunks are one element longer than the rest.  Same exception contract
/// as parallel_for.
void parallel_for_chunked(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace lgg::analysis
