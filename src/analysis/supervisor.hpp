// Supervised long-run execution: periodic crash-safe checkpoints, wall-clock
// deadlines, divergence watchdogs, and on-failure crash-dump artifacts.
//
// Long fault-injection soaks die in annoying ways: a run diverges and eats
// memory, a replicate wedges on a pathological seed, a machine reboots
// mid-experiment.  RunSupervisor wraps Simulator::run with the scaffolding
// a multi-hour campaign needs:
//
//   * every `checkpoint_every` steps the full simulator state is written
//     atomically (temp file + rename) so a killed process resumes with
//     --resume instead of restarting;
//   * a divergence bound on P_t and a wall-clock deadline abort runaway
//     runs deterministically instead of OOM-ing;
//   * on any failure a crash dump (config + seed + schedule + a final
//     checkpoint) is written so the failure replays offline.
//
// Lives above lgg_core (links the simulator), hence the separate
// lgg_supervision target.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/thread_pool.hpp"
#include "common/types.hpp"

namespace lgg::core {
class Simulator;
class MetricsRecorder;
}  // namespace lgg::core

namespace lgg::analysis {

class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class DivergenceDetected : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Wall-clock watchdog.  Default-constructed deadlines never expire.
class Deadline {
 public:
  Deadline() = default;
  explicit Deadline(std::chrono::milliseconds budget)
      : start_(Clock::now()), budget_(budget), enabled_(budget.count() > 0) {}

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] bool expired() const {
    return enabled_ && Clock::now() - start_ >= budget_;
  }
  /// Throws DeadlineExceeded mentioning `what` when expired.
  void check(const std::string& what) const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  std::chrono::milliseconds budget_{0};
  bool enabled_ = false;
};

struct SupervisorOptions {
  /// Steps between periodic checkpoints; 0 disables them.
  TimeStep checkpoint_every = 0;
  /// Where periodic checkpoints go (written via temp + rename).  Required
  /// when checkpoint_every > 0.
  std::string checkpoint_path;
  /// Abort (DivergenceDetected) when P_t exceeds this; 0 disables.
  double divergence_bound = 0.0;
  /// Wall-clock budget per run/replicate; <= 0 disables.
  std::chrono::milliseconds deadline{0};
  /// Watchdog polling granularity in steps (the run is chunked by this).
  TimeStep check_every = 64;
  /// Directory for crash-dump artifacts; empty disables dumps.
  std::string crash_dump_dir;
  /// Free-form reproduction notes embedded in crash dumps (config text,
  /// command line, ...).
  std::string repro_config;
  std::uint64_t seed = 0;
  std::string label = "run";
  /// Trap SIGINT/SIGTERM for the duration of run(): a signal requests a
  /// graceful stop at the next chunk boundary, after which a final atomic
  /// checkpoint (when checkpoint_path is set) and a flight-recorder dump
  /// (when crash_dump_dir is set and telemetry is attached) are written.
  /// The previous handlers are restored when run() returns.  SIGUSR1 is
  /// trapped alongside: it requests a statusz + flight-recorder snapshot
  /// at the next chunk boundary (statusz_path must be set) and the run
  /// continues undisturbed.
  bool handle_signals = false;
  /// Live exposition: when non-empty, a Prometheus-text statusz snapshot
  /// (obs/expose.hpp) is written atomically to this path — periodically,
  /// on SIGUSR1, and once more when run() returns.  A SIGUSR1-triggered
  /// write also dumps the flight ring to `statusz_path + ".events.jsonl"`.
  std::string statusz_path;
  /// Steps between periodic statusz writes; 0 = only on SIGUSR1/run end.
  TimeStep statusz_every = 0;
  /// Checkpoint generations retained as a ring (core/ckpt_chain.hpp).
  /// 1 keeps the classic single-file behavior; >= 2 switches periodic
  /// checkpoints to generation-chain mode: each snapshot becomes
  /// `checkpoint_path`.genNNNNNN and a CRC'd manifest
  /// (`checkpoint_path`.manifest) is updated last, so a newest *valid*
  /// generation exists no matter where the process dies.
  int generations = 1;
  /// Self-healing budget: on an I/O or simulator error (not divergence —
  /// a deterministic trajectory re-diverges identically, so rollback
  /// cannot help it), roll back to the newest valid generation and retry,
  /// at most this many times.  0 disables self-healing (errors fail the
  /// run as before).  Requires generations >= 2.
  int max_recoveries = 0;
  /// Capped exponential backoff between recovery attempts; the delay
  /// doubles per recovery up to the cap.  0 retries immediately (tests).
  std::int64_t recovery_backoff_ms = 50;
  std::int64_t recovery_backoff_max_ms = 2000;
  /// Chain mode: called (when set) just before each generation append to
  /// capture the telemetry stream's current byte offset — flush the JSONL
  /// stream and return tellp().  The offset is recorded in the manifest.
  std::function<std::uint64_t()> telemetry_offset;
  /// Chain mode: called after a successful rollback with the restored
  /// generation's telemetry offset — truncate the JSONL stream file to
  /// that many bytes (discarding any buffered tail) so the recovered
  /// stream stays byte-identical to an uninterrupted run's.
  std::function<void(std::uint64_t)> telemetry_rewind;
};

struct SupervisedResult {
  enum class FailureKind {
    kNone,        ///< completed all requested steps
    kError,       ///< the simulator (or a checkpoint write) threw
    kDivergence,  ///< P_t exceeded divergence_bound
    kDeadline,    ///< wall-clock budget exhausted
    kStopped,     ///< SIGINT/SIGTERM graceful stop (handle_signals)
    kRecoveryExhausted,  ///< self-healing budget spent (or no valid
                         ///< generation left to roll back to)
  };

  bool ok = false;
  FailureKind kind = FailureKind::kNone;
  TimeStep steps_done = 0;      ///< net steps this call advanced sim.now()
  std::string error;            ///< what() of the failure, empty when ok
  std::string crash_dump_path;  ///< dump text file, empty if none written
  int recoveries = 0;           ///< successful self-heals during this run
  int rollback_depth = 0;       ///< deepest generation rollback performed
};

class RunSupervisor {
 public:
  explicit RunSupervisor(SupervisorOptions options);

  [[nodiscard]] const SupervisorOptions& options() const { return options_; }

  /// Runs `steps` simulator steps under supervision.  Failures (divergence,
  /// deadline, anything the simulator throws) are captured into the result
  /// — not rethrown — after writing the crash-dump artifact.
  SupervisedResult run(core::Simulator& sim, TimeStep steps,
                       core::MetricsRecorder* recorder = nullptr) const;

  struct ReplicateFailure {
    std::size_t index = 0;
    std::string label;
    std::string error;
  };
  struct ReplicateReport {
    std::vector<double> values;  ///< one per replicate; NaN where failed
    std::vector<ReplicateFailure> failures;
    [[nodiscard]] bool all_ok() const { return failures.empty(); }
  };

  /// One replicate: gets its flat index, derived seed, and a per-replicate
  /// deadline it should poll (via check) in its own long loops.
  using Replicate = std::function<double(
      std::size_t index, std::uint64_t seed, const Deadline& deadline)>;

  /// Fans `count` replicates over the pool with the derive_seed discipline.
  /// A throwing replicate is recorded in the report (label + what()) and
  /// the rest keep running — one pathological seed no longer sinks the
  /// campaign.
  ReplicateReport run_replicates(ThreadPool& pool, std::size_t count,
                                 std::uint64_t master_seed,
                                 const Replicate& replicate) const;

 private:
  std::string write_crash_dump(core::Simulator& sim,
                               const std::string& error) const;

  SupervisorOptions options_;
};

}  // namespace lgg::analysis
