// Umbrella header: the entire liblgg public API.
//
//   #include "lgg.hpp"
//
// pulls in the multigraph substrate, the flow solvers and feasibility
// machinery, the LGG simulator with every pluggable component, the
// baselines, and the analysis toolkit.  Individual headers remain the
// preferred include for compile-time-conscious users.
#pragma once

#include "common/failpoint.hpp"  // IWYU pragma: export
#include "common/require.hpp"   // IWYU pragma: export
#include "common/rng.hpp"       // IWYU pragma: export
#include "common/types.hpp"     // IWYU pragma: export

#include "graph/algorithms.hpp"   // IWYU pragma: export
#include "graph/dot_export.hpp"   // IWYU pragma: export
#include "graph/generators.hpp"   // IWYU pragma: export
#include "graph/graph_io.hpp"     // IWYU pragma: export
#include "graph/multigraph.hpp"   // IWYU pragma: export

#include "flow/dinic.hpp"               // IWYU pragma: export
#include "flow/edmonds_karp.hpp"        // IWYU pragma: export
#include "flow/feasibility.hpp"         // IWYU pragma: export
#include "flow/flow_network.hpp"        // IWYU pragma: export
#include "flow/max_flow.hpp"            // IWYU pragma: export
#include "flow/min_cut.hpp"             // IWYU pragma: export
#include "flow/path_decomposition.hpp"  // IWYU pragma: export
#include "flow/push_relabel.hpp"        // IWYU pragma: export

#include "obs/drift.hpp"            // IWYU pragma: export
#include "obs/flight_recorder.hpp"  // IWYU pragma: export
#include "obs/json.hpp"             // IWYU pragma: export
#include "obs/registry.hpp"         // IWYU pragma: export
#include "obs/telemetry.hpp"        // IWYU pragma: export

#include "core/arrival.hpp"          // IWYU pragma: export
#include "core/bounds.hpp"           // IWYU pragma: export
#include "core/burst_condition.hpp"  // IWYU pragma: export
#include "core/checkpoint.hpp"       // IWYU pragma: export
#include "core/ckpt_chain.hpp"       // IWYU pragma: export
#include "core/convergence.hpp"      // IWYU pragma: export
#include "core/dynamics.hpp"         // IWYU pragma: export
#include "core/faults.hpp"           // IWYU pragma: export
#include "core/flow_plan.hpp"        // IWYU pragma: export
#include "core/generalized.hpp"      // IWYU pragma: export
#include "core/induction.hpp"        // IWYU pragma: export
#include "core/interference.hpp"     // IWYU pragma: export
#include "core/latency.hpp"          // IWYU pragma: export
#include "core/lgg_protocol.hpp"     // IWYU pragma: export
#include "core/loss.hpp"             // IWYU pragma: export
#include "core/lyapunov.hpp"         // IWYU pragma: export
#include "core/metrics.hpp"          // IWYU pragma: export
#include "core/protocol.hpp"         // IWYU pragma: export
#include "core/region.hpp"           // IWYU pragma: export
#include "core/scenarios.hpp"        // IWYU pragma: export
#include "core/sd_network.hpp"       // IWYU pragma: export
#include "core/simulator.hpp"        // IWYU pragma: export
#include "core/stability.hpp"        // IWYU pragma: export
#include "core/throughput.hpp"       // IWYU pragma: export
#include "core/trace_io.hpp"         // IWYU pragma: export

#include "baselines/backpressure.hpp"       // IWYU pragma: export
#include "baselines/flow_routing.hpp"       // IWYU pragma: export
#include "baselines/hot_potato.hpp"         // IWYU pragma: export
#include "baselines/protocol_registry.hpp"  // IWYU pragma: export
#include "baselines/random_walk.hpp"        // IWYU pragma: export
#include "baselines/stale_lgg.hpp"          // IWYU pragma: export

#include "analysis/csv.hpp"          // IWYU pragma: export
#include "analysis/experiment.hpp"   // IWYU pragma: export
#include "analysis/histogram.hpp"    // IWYU pragma: export
#include "analysis/stats.hpp"        // IWYU pragma: export
#include "analysis/supervisor.hpp"   // IWYU pragma: export
#include "analysis/sweep.hpp"        // IWYU pragma: export
#include "analysis/table.hpp"        // IWYU pragma: export
#include "analysis/thread_pool.hpp"  // IWYU pragma: export
#include "analysis/timeseries.hpp"   // IWYU pragma: export
