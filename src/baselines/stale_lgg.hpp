// LGG with stale neighbourhood information — an ablation of the paper's
// "localized" assumption.  Real distributed deployments learn neighbour
// queue lengths through periodic beacons, so node u compares against the
// declared queues from `delay` steps ago instead of the current ones.
// delay = 0 recovers Algorithm 1 exactly.
#pragma once

#include <deque>

#include "core/lgg_protocol.hpp"

namespace lgg::baselines {

class StaleLggProtocol final : public core::RoutingProtocol {
 public:
  explicit StaleLggProtocol(int delay,
                            core::TieBreak tie_break = core::TieBreak::kById);

  [[nodiscard]] std::string_view name() const override { return "stale_lgg"; }
  [[nodiscard]] int delay() const { return delay_; }

  void select_transmissions(const core::StepView& view, Rng& rng,
                            std::vector<core::Transmission>& out) override;

  void reset() override { history_.clear(); }

  // The declaration history is the protocol's memory; without it a resumed
  // run would compare against the wrong (empty) past.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  int delay_;
  core::TieBreak tie_break_;
  std::deque<std::vector<PacketCount>> history_;  // declared snapshots
  std::vector<graph::IncidentLink> scratch_;
};

}  // namespace lgg::baselines
