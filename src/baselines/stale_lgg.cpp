#include "baselines/stale_lgg.hpp"

#include <algorithm>

#include "common/binio.hpp"
#include "common/require.hpp"

namespace lgg::baselines {

StaleLggProtocol::StaleLggProtocol(int delay, core::TieBreak tie_break)
    : delay_(delay), tie_break_(tie_break) {
  LGG_REQUIRE(delay >= 0, "StaleLggProtocol: delay >= 0");
}

void StaleLggProtocol::select_transmissions(
    const core::StepView& view, Rng& rng,
    std::vector<core::Transmission>& out) {
  // Record this step's declarations, then look `delay_` steps back.
  history_.emplace_back(view.declared.begin(), view.declared.end());
  while (static_cast<int>(history_.size()) > delay_ + 1) {
    history_.pop_front();
  }
  const std::vector<PacketCount>& stale = history_.front();

  const NodeId n = view.net->node_count();
  for (NodeId u = 0; u < n; ++u) {
    PacketCount budget = view.queue[static_cast<std::size_t>(u)];
    if (budget <= 0) continue;
    const PacketCount qu = view.queue[static_cast<std::size_t>(u)];

    scratch_.clear();
    for (const graph::IncidentLink& link : view.incidence->incident(u)) {
      if (view.active != nullptr && !view.active->active(link.edge)) continue;
      scratch_.push_back(link);
    }
    if (scratch_.empty()) continue;
    auto stale_of = [&stale](NodeId v) {
      return stale[static_cast<std::size_t>(v)];
    };
    if (tie_break_ == core::TieBreak::kRandomShuffle) {
      std::shuffle(scratch_.begin(), scratch_.end(), rng.engine());
      std::stable_sort(scratch_.begin(), scratch_.end(),
                       [&](const graph::IncidentLink& a,
                           const graph::IncidentLink& b) {
                         return stale_of(a.neighbor) < stale_of(b.neighbor);
                       });
    } else {
      std::sort(scratch_.begin(), scratch_.end(),
                [&](const graph::IncidentLink& a,
                    const graph::IncidentLink& b) {
                  if (stale_of(a.neighbor) != stale_of(b.neighbor)) {
                    return stale_of(a.neighbor) < stale_of(b.neighbor);
                  }
                  if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                  return a.edge < b.edge;
                });
    }
    for (const graph::IncidentLink& link : scratch_) {
      if (budget <= 0) break;
      if (qu > stale_of(link.neighbor)) {
        out.push_back(core::Transmission{link.edge, u, link.neighbor});
        --budget;
      }
    }
  }
}

void StaleLggProtocol::save_state(std::ostream& os) const {
  binio::write_u32(os, static_cast<std::uint32_t>(history_.size()));
  for (const std::vector<PacketCount>& snapshot : history_) {
    binio::write_u32(os, static_cast<std::uint32_t>(snapshot.size()));
    for (const PacketCount q : snapshot) binio::write_i64(os, q);
  }
}

void StaleLggProtocol::load_state(std::istream& is) {
  history_.clear();
  const std::uint32_t depth = binio::read_u32(is);
  for (std::uint32_t i = 0; i < depth; ++i) {
    const std::uint32_t n = binio::read_u32(is);
    std::vector<PacketCount> snapshot(n);
    for (std::uint32_t v = 0; v < n; ++v) snapshot[v] = binio::read_i64(is);
    history_.push_back(std::move(snapshot));
  }
}

}  // namespace lgg::baselines
