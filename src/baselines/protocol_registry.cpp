#include "baselines/protocol_registry.hpp"

#include "baselines/backpressure.hpp"
#include "baselines/flow_routing.hpp"
#include "baselines/hot_potato.hpp"
#include "baselines/random_walk.hpp"
#include "common/require.hpp"
#include "core/lgg_protocol.hpp"

namespace lgg::baselines {

std::vector<std::string_view> protocol_names() {
  return {"lgg",        "lgg_random_tiebreak", "flow_routing",
          "backpressure", "hot_potato",        "random_walk"};
}

std::unique_ptr<core::RoutingProtocol> make_protocol(std::string_view name) {
  if (name == "lgg") {
    return std::make_unique<core::LggProtocol>();
  }
  if (name == "lgg_random_tiebreak") {
    return std::make_unique<core::LggProtocol>(
        core::TieBreak::kRandomShuffle);
  }
  if (name == "flow_routing") {
    return std::make_unique<FlowRoutingProtocol>();
  }
  if (name == "backpressure") {
    return std::make_unique<BackpressureProtocol>();
  }
  if (name == "hot_potato") {
    return std::make_unique<HotPotatoProtocol>();
  }
  if (name == "random_walk") {
    return std::make_unique<RandomWalkProtocol>();
  }
  LGG_REQUIRE(false, "make_protocol: unknown protocol '" +
                         std::string(name) + "'");
  return nullptr;
}

}  // namespace lgg::baselines
