// The "optimal method" the paper compares LGG against: route packets along
// a path decomposition of a maximum flow of G* (the E_t^Φ of Equation 4).
//
// At construction (and after every topology change) the protocol solves a
// max flow on the active subgraph, decomposes it into unit s*-d* paths, and
// strips the virtual endpoints, leaving paths source → … → sink inside G.
// Each step, every hop (u, v) of every path forwards one packet if u still
// has one available (per-node budgets shared across paths).
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace lgg::baselines {

class FlowRoutingProtocol final : public core::RoutingProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "flow_routing"; }

  void select_transmissions(const core::StepView& view, Rng& rng,
                            std::vector<core::Transmission>& out) override;

  void reset() override { cached_version_ = kNoVersion; }

  /// Number of unit paths in the current plan (0 before the first step).
  [[nodiscard]] std::size_t path_count() const { return plan_.size(); }

 private:
  static constexpr std::uint64_t kNoVersion = ~std::uint64_t{0};

  void rebuild_plan(const core::StepView& view);

  std::vector<std::vector<core::Transmission>> plan_;  // hops per path
  std::uint64_t cached_version_ = kNoVersion;
  std::vector<PacketCount> budget_;  // scratch
};

}  // namespace lgg::baselines
