#include "baselines/backpressure.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace lgg::baselines {

BackpressureProtocol::BackpressureProtocol(PacketCount threshold)
    : threshold_(threshold) {
  LGG_REQUIRE(threshold >= 0, "BackpressureProtocol: threshold >= 0");
}

void BackpressureProtocol::select_transmissions(
    const core::StepView& view, Rng&, std::vector<core::Transmission>& out) {
  const NodeId n = view.net->node_count();
  for (NodeId u = 0; u < n; ++u) {
    PacketCount budget = view.queue[static_cast<std::size_t>(u)];
    if (budget <= 0) continue;
    const PacketCount qu = view.queue[static_cast<std::size_t>(u)];

    scratch_.clear();
    for (const graph::IncidentLink& link : view.incidence->incident(u)) {
      if (view.active != nullptr && !view.active->active(link.edge)) continue;
      if (qu - view.declared[static_cast<std::size_t>(link.neighbor)] >
          threshold_) {
        scratch_.push_back(link);
      }
    }
    // Largest differential first (smallest declared queue == largest drop;
    // ties by ids for determinism).
    std::sort(scratch_.begin(), scratch_.end(),
              [&](const graph::IncidentLink& a, const graph::IncidentLink& b) {
                const auto qa =
                    view.declared[static_cast<std::size_t>(a.neighbor)];
                const auto qb =
                    view.declared[static_cast<std::size_t>(b.neighbor)];
                if (qa != qb) return qa < qb;
                if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                return a.edge < b.edge;
              });
    for (const graph::IncidentLink& link : scratch_) {
      if (budget <= 0) break;
      out.push_back(core::Transmission{link.edge, u, link.neighbor});
      --budget;
    }
  }
}

}  // namespace lgg::baselines
