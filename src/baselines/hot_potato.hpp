// Shortest-path "hot potato" forwarding: every node pushes its packets
// toward the nearest sink regardless of downstream congestion.  A classic
// queue-oblivious contrast to LGG — throughput-optimal on a clear network,
// but it piles packets onto bottleneck nodes instead of spreading them.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace lgg::baselines {

class HotPotatoProtocol final : public core::RoutingProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "hot_potato"; }

  void select_transmissions(const core::StepView& view, Rng& rng,
                            std::vector<core::Transmission>& out) override;

  void reset() override { cached_version_ = kNoVersion; }

 private:
  static constexpr std::uint64_t kNoVersion = ~std::uint64_t{0};

  std::vector<int> dist_to_sink_;
  std::uint64_t cached_version_ = kNoVersion;
  std::vector<graph::IncidentLink> scratch_;
};

}  // namespace lgg::baselines
