#include "baselines/flow_routing.hpp"

#include "core/flow_plan.hpp"

namespace lgg::baselines {

void FlowRoutingProtocol::rebuild_plan(const core::StepView& view) {
  plan_ = core::build_flow_plan(*view.net, view.active).paths;
  cached_version_ = view.topology_version;
}

void FlowRoutingProtocol::select_transmissions(
    const core::StepView& view, Rng&, std::vector<core::Transmission>& out) {
  if (cached_version_ != view.topology_version) rebuild_plan(view);
  budget_.assign(view.queue.begin(), view.queue.end());
  for (const auto& path : plan_) {
    for (const core::Transmission& hop : path) {
      auto& b = budget_[static_cast<std::size_t>(hop.from)];
      if (b > 0) {
        out.push_back(hop);
        --b;
      }
    }
  }
}

}  // namespace lgg::baselines
