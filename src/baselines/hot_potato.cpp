#include "baselines/hot_potato.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"

namespace lgg::baselines {

void HotPotatoProtocol::select_transmissions(
    const core::StepView& view, Rng&, std::vector<core::Transmission>& out) {
  if (cached_version_ != view.topology_version) {
    dist_to_sink_ = graph::bfs_distances_multi(
        view.net->topology(), view.net->sinks(), view.active);
    cached_version_ = view.topology_version;
  }
  const NodeId n = view.net->node_count();
  for (NodeId u = 0; u < n; ++u) {
    PacketCount budget = view.queue[static_cast<std::size_t>(u)];
    if (budget <= 0) continue;
    const int du = dist_to_sink_[static_cast<std::size_t>(u)];
    if (du == 0 || du == graph::kUnreachable) continue;  // at a sink/cut off

    scratch_.clear();
    for (const graph::IncidentLink& link : view.incidence->incident(u)) {
      if (view.active != nullptr && !view.active->active(link.edge)) continue;
      if (dist_to_sink_[static_cast<std::size_t>(link.neighbor)] < du) {
        scratch_.push_back(link);
      }
    }
    std::sort(scratch_.begin(), scratch_.end(),
              [&](const graph::IncidentLink& a, const graph::IncidentLink& b) {
                const int da = dist_to_sink_[static_cast<std::size_t>(a.neighbor)];
                const int db = dist_to_sink_[static_cast<std::size_t>(b.neighbor)];
                if (da != db) return da < db;
                if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                return a.edge < b.edge;
              });
    for (const graph::IncidentLink& link : scratch_) {
      if (budget <= 0) break;
      out.push_back(core::Transmission{link.edge, u, link.neighbor});
      --budget;
    }
  }
}

}  // namespace lgg::baselines
