// Factory for every routing protocol in the library, keyed by name — used
// by the comparison benches and examples to sweep protocols uniformly.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/protocol.hpp"

namespace lgg::baselines {

/// Names: "lgg", "lgg_random_tiebreak", "flow_routing", "backpressure",
/// "hot_potato", "random_walk".
std::vector<std::string_view> protocol_names();

/// Throws ContractViolation for an unknown name.
std::unique_ptr<core::RoutingProtocol> make_protocol(std::string_view name);

}  // namespace lgg::baselines
