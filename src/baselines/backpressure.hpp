// Single-commodity backpressure (Tassiulas–Ephremides [3] style): like LGG
// it only fires positive-gradient links, but it allocates each node's
// budget to the links with the *largest differential* first (LGG serves the
// lowest-queue neighbours first), and it supports a minimum-differential
// threshold.
#pragma once

#include "core/protocol.hpp"

namespace lgg::baselines {

class BackpressureProtocol final : public core::RoutingProtocol {
 public:
  /// Only links with q(u) − q'(v) > threshold fire (threshold 0 recovers
  /// the classic rule).
  explicit BackpressureProtocol(PacketCount threshold = 0);

  [[nodiscard]] std::string_view name() const override {
    return "backpressure";
  }

  void select_transmissions(const core::StepView& view, Rng& rng,
                            std::vector<core::Transmission>& out) override;

 private:
  PacketCount threshold_;
  std::vector<graph::IncidentLink> scratch_;
};

}  // namespace lgg::baselines
