#include "baselines/random_walk.hpp"

#include <algorithm>

namespace lgg::baselines {

void RandomWalkProtocol::select_transmissions(
    const core::StepView& view, Rng& rng,
    std::vector<core::Transmission>& out) {
  const NodeId n = view.net->node_count();
  for (NodeId u = 0; u < n; ++u) {
    PacketCount budget = view.queue[static_cast<std::size_t>(u)];
    if (budget <= 0) continue;
    scratch_.clear();
    for (const graph::IncidentLink& link : view.incidence->incident(u)) {
      if (view.active != nullptr && !view.active->active(link.edge)) continue;
      scratch_.push_back(link);
    }
    std::shuffle(scratch_.begin(), scratch_.end(), rng.engine());
    for (const graph::IncidentLink& link : scratch_) {
      if (budget <= 0) break;
      out.push_back(core::Transmission{link.edge, u, link.neighbor});
      --budget;
    }
  }
}

}  // namespace lgg::baselines
