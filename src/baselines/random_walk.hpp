// Random-walk forwarding: each node scatters its packets over a random
// subset of incident links, one per link.  The weakest sensible baseline —
// packets do eventually reach sinks on a connected network, but with no
// gradient or direction information at all.
#pragma once

#include "core/protocol.hpp"

namespace lgg::baselines {

class RandomWalkProtocol final : public core::RoutingProtocol {
 public:
  [[nodiscard]] std::string_view name() const override { return "random_walk"; }

  void select_transmissions(const core::StepView& view, Rng& rng,
                            std::vector<core::Transmission>& out) override;

 private:
  std::vector<graph::IncidentLink> scratch_;
};

}  // namespace lgg::baselines
