// One strict textual grammar exposing every arrival process — the single
// construction path shared by `lgg_sim --arrival`, chaos scenarios, and
// the stability-atlas bench, replacing ad-hoc per-tool constructions.
//
//   spec      := name | name ":" pairs
//   pairs     := key "=" value ("," key "=" value)*
//
//   exact
//   scaled:factor=<f>
//   bernoulli:p=<f>
//   uniform:mean=<f>
//   poisson:mean=<f>
//   geometric:mean=<f>
//   burst:high=<f>,low=<f>,len=<u>,period=<u>
//   diurnal:mean=<f>,amp=<f>,period=<u>
//   pareto:alpha=<f>,mean=<f>
//   leaky:rho=<f>,sigma=<f>
//   token_bucket:r=<f>,b=<f>,period=<u>
//   adversary[:strategy=hoard|sweep|queue_aware][,rho=<f>][,sigma=<f>]
//            [,period=<u>][,fanout=<u>]
//
// The grammar is strict: an unknown process name, unknown/duplicate key,
// missing required key, or malformed number throws lgg::ContractViolation
// (the CLI usage contract maps that to exit code 2).  Adversary keys are
// optional and default to AdversaryOptions{}; every other process's keys
// are required.  Numeric validity (rho >= 0, period >= 1, ...) is then
// enforced by the process constructors under the same exception type, so
// one catch site covers both syntax and semantics.
#pragma once

#include <memory>
#include <string_view>

#include "core/arrival.hpp"

namespace lgg::traffic {

/// Parses `spec` and constructs the process.  Throws lgg::ContractViolation
/// on any syntactic or semantic error, with a message naming the problem.
[[nodiscard]] std::unique_ptr<core::ArrivalProcess> make_arrival(
    std::string_view spec);

/// One-line summary of the grammar for usage text.
[[nodiscard]] std::string_view arrival_grammar_help();

}  // namespace lgg::traffic
