#include "traffic/spec.hpp"

#include <cerrno>
#include <cstdlib>
#include <map>
#include <string>

#include "common/require.hpp"
#include "traffic/adversary.hpp"

namespace lgg::traffic {

namespace {

[[noreturn]] void bad_spec(std::string_view spec, const std::string& what) {
  throw ContractViolation("arrival spec \"" + std::string(spec) + "\": " +
                          what);
}

/// key → value map with duplicate detection.
std::map<std::string, std::string, std::less<>> parse_pairs(
    std::string_view spec, std::string_view body) {
  std::map<std::string, std::string, std::less<>> kv;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t comma = body.find(',', pos);
    const std::string_view pair =
        body.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= pair.size()) {
      bad_spec(spec, "expected key=value, got \"" + std::string(pair) + "\"");
    }
    const auto key = std::string(pair.substr(0, eq));
    if (!kv.emplace(key, std::string(pair.substr(eq + 1))).second) {
      bad_spec(spec, "duplicate key \"" + key + "\"");
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return kv;
}

class Args {
 public:
  Args(std::string_view spec, std::string_view body)
      : spec_(spec), kv_(parse_pairs(spec, body)) {}
  /// Empty-body overload: a bare name with no pairs.
  explicit Args(std::string_view spec) : spec_(spec) {}

  [[nodiscard]] double number(std::string_view key) {
    const std::string raw = take(key, /*required=*/true);
    return to_number(key, raw);
  }
  [[nodiscard]] double number_or(std::string_view key, double fallback) {
    const std::string raw = take(key, /*required=*/false);
    return raw.empty() ? fallback : to_number(key, raw);
  }
  [[nodiscard]] std::int64_t integer(std::string_view key) {
    return to_integer(key, number(key));
  }
  [[nodiscard]] std::int64_t integer_or(std::string_view key,
                                        std::int64_t fallback) {
    const std::string raw = take(key, /*required=*/false);
    return raw.empty() ? fallback : to_integer(key, to_number(key, raw));
  }
  [[nodiscard]] std::string word_or(std::string_view key,
                                    std::string fallback) {
    const std::string raw = take(key, /*required=*/false);
    return raw.empty() ? std::move(fallback) : raw;
  }

  /// Every key must have been consumed.
  void finish() {
    if (!kv_.empty()) {
      bad_spec(spec_, "unknown key \"" + kv_.begin()->first + "\"");
    }
  }

 private:
  std::string take(std::string_view key, bool required) {
    const auto it = kv_.find(key);
    if (it == kv_.end()) {
      if (required) bad_spec(spec_, "missing key \"" + std::string(key) + "\"");
      return {};
    }
    std::string value = std::move(it->second);
    kv_.erase(it);
    return value;
  }

  [[nodiscard]] double to_number(std::string_view key,
                                 const std::string& raw) {
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    if (errno != 0 || end == raw.c_str() || *end != '\0') {
      bad_spec(spec_, "key \"" + std::string(key) + "\": bad number \"" + raw +
                          "\"");
    }
    return value;
  }

  [[nodiscard]] std::int64_t to_integer(std::string_view key, double value) {
    const auto as_int = static_cast<std::int64_t>(value);
    if (static_cast<double>(as_int) != value) {
      bad_spec(spec_, "key \"" + std::string(key) + "\": expected an integer");
    }
    return as_int;
  }

  std::string_view spec_;
  std::map<std::string, std::string, std::less<>> kv_;
};

AdversaryStrategy parse_strategy(std::string_view spec,
                                 const std::string& word) {
  if (word == "hoard") return AdversaryStrategy::kHoardDump;
  if (word == "sweep") return AdversaryStrategy::kRotatingSweep;
  if (word == "queue_aware") return AdversaryStrategy::kQueueAware;
  bad_spec(spec, "unknown strategy \"" + word +
                     "\" (hoard | sweep | queue_aware)");
}

}  // namespace

std::unique_ptr<core::ArrivalProcess> make_arrival(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view name =
      colon == std::string_view::npos ? spec : spec.substr(0, colon);
  const bool has_body = colon != std::string_view::npos;
  const std::string_view body = has_body ? spec.substr(colon + 1)
                                         : std::string_view{};
  if (has_body && body.empty()) bad_spec(spec, "empty parameter list");
  Args args = has_body ? Args(spec, body) : Args(spec);

  std::unique_ptr<core::ArrivalProcess> process;
  if (name == "exact") {
    process = std::make_unique<core::ExactArrival>();
  } else if (name == "scaled") {
    process = std::make_unique<core::ScaledArrival>(args.number("factor"));
  } else if (name == "bernoulli") {
    process = std::make_unique<core::BernoulliArrival>(args.number("p"));
  } else if (name == "uniform") {
    process = std::make_unique<core::UniformArrival>(args.number("mean"));
  } else if (name == "poisson") {
    process = std::make_unique<core::PoissonArrival>(args.number("mean"));
  } else if (name == "geometric") {
    process = std::make_unique<core::GeometricArrival>(args.number("mean"));
  } else if (name == "burst") {
    const double high = args.number("high");
    const double low = args.number("low");
    const std::int64_t len = args.integer("len");
    const std::int64_t period = args.integer("period");
    process = std::make_unique<core::BurstArrival>(high, low, len, period);
  } else if (name == "diurnal") {
    const double mean = args.number("mean");
    const double amp = args.number("amp");
    const std::int64_t period = args.integer("period");
    process = std::make_unique<core::DiurnalArrival>(mean, amp, period);
  } else if (name == "pareto") {
    const double alpha = args.number("alpha");
    const double mean = args.number("mean");
    process = std::make_unique<core::ParetoArrival>(alpha, mean);
  } else if (name == "leaky") {
    const double rho = args.number("rho");
    const double sigma = args.number("sigma");
    process = std::make_unique<core::LeakyBucketArrival>(rho, sigma);
  } else if (name == "token_bucket") {
    const double r = args.number("r");
    const double b = args.number("b");
    const std::int64_t period = args.integer("period");
    process = std::make_unique<core::TokenBucketArrival>(r, b, period);
  } else if (name == "adversary") {
    AdversaryOptions opt;
    opt.strategy = parse_strategy(
        spec, args.word_or("strategy", std::string(to_string(opt.strategy))));
    opt.rho = args.number_or("rho", opt.rho);
    opt.sigma = args.number_or("sigma", opt.sigma);
    opt.period = args.integer_or("period", opt.period);
    const std::int64_t fanout = args.integer_or("fanout", opt.fanout);
    LGG_REQUIRE(fanout >= 0 && fanout <= 0xFFFFFFFFll,
                "arrival spec: fanout out of range");
    opt.fanout = static_cast<std::uint32_t>(fanout);
    process = std::make_unique<AdversarialArrival>(opt);
  } else {
    bad_spec(spec, "unknown arrival process \"" + std::string(name) + "\"");
  }
  args.finish();
  return process;
}

std::string_view arrival_grammar_help() {
  return "exact | scaled:factor= | bernoulli:p= | uniform:mean= | "
         "poisson:mean= | geometric:mean= | "
         "burst:high=,low=,len=,period= | diurnal:mean=,amp=,period= | "
         "pareto:alpha=,mean= | leaky:rho=,sigma= | "
         "token_bucket:r=,b=,period= | "
         "adversary[:strategy=hoard|sweep|queue_aware,rho=,sigma=,"
         "period=,fanout=]";
}

}  // namespace lgg::traffic
