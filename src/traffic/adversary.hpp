// The adversarial traffic plane: a (ρ,σ)-bounded *adaptive* adversary.
//
// AdversarialArrival is an arrival process that is provably admissible —
// over every window of w steps, injections at source v never exceed
// ρ·in(v)·w + σ — while choosing *where* and *when* to spend that
// allowance as hostilely as it can.  Admissibility is enforced by exact
// integer token buckets (core/arrival.hpp envelope::kTokenScale): each
// source carries a bucket capped at ⌊σ·2^20⌋ units refilled ⌊ρ·in·2^20⌋
// units per step, and a burst dumps at most the bucket.  Telescoping the
// per-step bound A·2^20 ≤ b_s − b_t + rate·w ≤ cap + rate·w gives
// A ≤ σ + ρ·in·w with no floating-point slack — the oracle in
// tests/traffic/adversary_test.cpp checks exactly this over all windows.
//
// The adversary is *adaptive*: each step it reads the live simulator
// state (ArrivalContext — source list, queue snapshot, addressed RNG) in
// its serial begin_step hook, picks this step's targets, and precomputes
// their dump counts.  packets() is then a read-only lookup, so the
// process is parallel_safe; and because only targeted sources can inject,
// it publishes a sparse active-source set — on a 10⁶-source topology the
// injection phase visits O(targets) nodes, not O(sources).
//
// Strategies:
//   * hoard-and-dump  — sit silent for period−1 steps, then dump the full
//     accumulated allowance of `fanout` sources at once, at an
//     RNG-chosen position in the source list (so seeds move the blast).
//   * rotating sweep  — every step, spend the allowance of the next
//     `fanout` sources in a deterministic rotation; the burst crawls
//     around the network, never letting one region drain.
//   * queue-aware     — every step, aim the allowance at the `fanout`
//     sources with the longest current queues: in-envelope bursts
//     concentrated on the currently hottest region.
//
// Lazy catch-up keeps the cost O(targets) per step: untouched buckets
// refill implicitly via b = min(cap, b + rate·elapsed), which equals the
// per-step iteration exactly (min is monotone), so sparse updates are
// order- and batching-independent.  The buckets, catch-up timestamps, and
// sweep cursor checkpoint (v7), making a mid-hoard resume bitwise
// identical to the uninterrupted run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "core/arrival.hpp"

namespace lgg::obs {
class Gauge;
class MetricRegistry;
}  // namespace lgg::obs

namespace lgg::traffic {

enum class AdversaryStrategy : std::uint8_t {
  kHoardDump = 0,
  kRotatingSweep = 1,
  kQueueAware = 2,
};

[[nodiscard]] std::string_view to_string(AdversaryStrategy strategy);

struct AdversaryOptions {
  AdversaryStrategy strategy = AdversaryStrategy::kHoardDump;
  /// Long-run rate fraction of in(v); rho < 1 stays inside the feasible
  /// region, rho >= 1 probes the frontier.  Finite, >= 0.
  double rho = 0.9;
  /// Burst allowance in packets (the bucket cap).  Finite, >= 0.
  double sigma = 32.0;
  /// Hoard-and-dump cadence (a dump every `period` steps); ignored by the
  /// per-step strategies.  >= 1.
  TimeStep period = 16;
  /// Sources targeted per active step.  >= 1.
  std::uint32_t fanout = 64;
};

class AdversarialArrival final : public core::ArrivalProcess {
 public:
  /// Validates the options (ContractViolation on rho/sigma < 0 or
  /// non-finite, period < 1, fanout < 1).
  explicit AdversarialArrival(AdversaryOptions options);

  [[nodiscard]] std::string_view name() const override { return "adversary"; }
  /// packets() only reads the begin_step-precomputed dump table.
  [[nodiscard]] bool parallel_safe() const override { return true; }

  void begin_step(const core::ArrivalContext& ctx) override;
  [[nodiscard]] const std::vector<NodeId>* active_sources() const override {
    return &active_;
  }
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng& rng) override;

  /// adversary.active_sources — targets this step; adversary.
  /// envelope_headroom — unspent burst allowance (packets) summed over
  /// this step's targets after their dumps.
  void register_metrics(obs::MetricRegistry& registry) override;

  // Buckets, catch-up timestamps, and the sweep cursor persist across
  // steps, so they checkpoint (the dump table is rebuilt every
  // begin_step and does not).
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  [[nodiscard]] const AdversaryOptions& options() const { return opt_; }

 private:
  /// Catches bucket v up through step t and dumps it into the plan.
  void dump_target(NodeId v, Cap in_rate, TimeStep t);
  void ensure_sized(std::size_t n);

  AdversaryOptions opt_;
  std::vector<std::int64_t> bucket_;  // token units; kFresh = full bucket
  std::vector<TimeStep> last_;        // step the bucket was refilled through
  std::uint64_t cursor_ = 0;          // rotating-sweep position

  // Rebuilt every begin_step.
  std::vector<NodeId> active_;                          // sorted targets
  std::vector<std::pair<NodeId, PacketCount>> planned_; // sorted dump table
  std::vector<std::pair<PacketCount, NodeId>> scratch_; // queue-aware sort
  std::int64_t headroom_units_ = 0;

  obs::Gauge* active_gauge_ = nullptr;
  obs::Gauge* headroom_gauge_ = nullptr;
};

}  // namespace lgg::traffic
