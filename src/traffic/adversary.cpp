#include "traffic/adversary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/binio.hpp"
#include "common/require.hpp"
#include "core/sd_network.hpp"
#include "obs/registry.hpp"

namespace lgg::traffic {

namespace {

/// A bucket that was never targeted: conceptually full (the σ allowance is
/// available from t = 0; starting full is admissible — the telescoped
/// window bound only needs b ≤ cap at all times).
inline constexpr std::int64_t kFresh = -1;

inline constexpr std::uint32_t kMaxStateNodes = 1u << 26;

[[noreturn]] void bad_state(const char* what) {
  throw std::runtime_error(std::string("adversary state: ") + what);
}

}  // namespace

std::string_view to_string(AdversaryStrategy strategy) {
  switch (strategy) {
    case AdversaryStrategy::kHoardDump: return "hoard";
    case AdversaryStrategy::kRotatingSweep: return "sweep";
    case AdversaryStrategy::kQueueAware: return "queue_aware";
  }
  return "?";
}

AdversarialArrival::AdversarialArrival(AdversaryOptions options)
    : opt_(options) {
  LGG_REQUIRE(std::isfinite(opt_.rho) && opt_.rho >= 0.0,
              "AdversarialArrival: rho finite and >= 0");
  LGG_REQUIRE(std::isfinite(opt_.sigma) && opt_.sigma >= 0.0,
              "AdversarialArrival: sigma finite and >= 0");
  LGG_REQUIRE(opt_.period >= 1, "AdversarialArrival: period >= 1");
  LGG_REQUIRE(opt_.fanout >= 1, "AdversarialArrival: fanout >= 1");
}

void AdversarialArrival::ensure_sized(std::size_t n) {
  if (bucket_.size() < n) {
    bucket_.resize(n, kFresh);
    last_.resize(n, 0);
  }
}

void AdversarialArrival::dump_target(NodeId v, Cap in_rate, TimeStep t) {
  if (in_rate <= 0) return;
  const std::int64_t cap = core::envelope::to_units(opt_.sigma);
  const std::int64_t rate =
      core::envelope::to_units(opt_.rho * static_cast<double>(in_rate));
  auto& b = bucket_[static_cast<std::size_t>(v)];
  auto& last = last_[static_cast<std::size_t>(v)];
  if (b == kFresh) {
    b = cap;
  } else if (t > last) {
    // Lazy catch-up: min(cap, b + rate·elapsed) equals iterating the
    // per-step refill (min is monotone), computed overflow-safely.
    const std::int64_t elapsed = t - last;
    if (rate > 0 && elapsed > (cap - b) / rate) {
      b = cap;
    } else {
      b += rate * elapsed;
    }
  }
  last = t;
  const std::int64_t dump = b / core::envelope::kTokenScale;
  b -= dump * core::envelope::kTokenScale;
  headroom_units_ += b;
  active_.push_back(v);
  planned_.emplace_back(v, static_cast<PacketCount>(dump));
}

void AdversarialArrival::begin_step(const core::ArrivalContext& ctx) {
  active_.clear();
  planned_.clear();
  headroom_units_ = 0;
  if (ctx.net != nullptr) {
    ensure_sized(static_cast<std::size_t>(ctx.net->node_count()));
  }
  const std::size_t nsrc = ctx.sources.size();
  if (ctx.net != nullptr && nsrc > 0) {
    const auto in_of = [&](NodeId v) { return ctx.net->spec(v).in; };
    const std::size_t take =
        std::min<std::size_t>(opt_.fanout, nsrc);
    switch (opt_.strategy) {
      case AdversaryStrategy::kHoardDump: {
        // Silent while hoarding; on dump steps the blast position comes
        // off the phase-global addressed stream, so the seed moves it but
        // engines and restores reproduce it exactly.
        if ((ctx.t + 1) % opt_.period != 0) break;
        std::size_t start = 0;
        if (ctx.rng != nullptr) {
          start = static_cast<std::size_t>(ctx.rng->uniform_int(
              0, static_cast<std::int64_t>(nsrc) - 1));
        }
        for (std::size_t i = 0; i < take; ++i) {
          const NodeId v = ctx.sources[(start + i) % nsrc];
          dump_target(v, in_of(v), ctx.t);
        }
        break;
      }
      case AdversaryStrategy::kRotatingSweep: {
        for (std::size_t i = 0; i < take; ++i) {
          const NodeId v = ctx.sources[(cursor_ + i) % nsrc];
          dump_target(v, in_of(v), ctx.t);
        }
        cursor_ = (cursor_ + take) % nsrc;
        break;
      }
      case AdversaryStrategy::kQueueAware: {
        // Aim the allowance at the sources already holding the longest
        // queues (ties: lower id) — the hottest region the live snapshot
        // exposes.  O(sources) scan + O(sources·log fanout) selection.
        scratch_.clear();
        for (const NodeId v : ctx.sources) {
          const auto idx = static_cast<std::size_t>(v);
          const PacketCount q =
              idx < ctx.queues.size() ? ctx.queues[idx] : 0;
          scratch_.emplace_back(q, v);
        }
        const auto hotter = [](const std::pair<PacketCount, NodeId>& a,
                               const std::pair<PacketCount, NodeId>& b) {
          if (a.first != b.first) return a.first > b.first;
          return a.second < b.second;
        };
        std::partial_sort(scratch_.begin(),
                          scratch_.begin() + static_cast<std::ptrdiff_t>(take),
                          scratch_.end(), hotter);
        for (std::size_t i = 0; i < take; ++i) {
          const NodeId v = scratch_[i].second;
          dump_target(v, in_of(v), ctx.t);
        }
        break;
      }
    }
  }
  // The injection phase binary-searches both tables by node id.
  std::sort(active_.begin(), active_.end());
  std::sort(planned_.begin(), planned_.end());
  if (active_gauge_ != nullptr) {
    active_gauge_->set(static_cast<double>(active_.size()));
  }
  if (headroom_gauge_ != nullptr) {
    headroom_gauge_->set(static_cast<double>(headroom_units_) /
                         static_cast<double>(core::envelope::kTokenScale));
  }
}

PacketCount AdversarialArrival::packets(NodeId v, Cap, TimeStep, Rng&) {
  const auto it = std::lower_bound(
      planned_.begin(), planned_.end(), v,
      [](const std::pair<NodeId, PacketCount>& entry, NodeId node) {
        return entry.first < node;
      });
  if (it == planned_.end() || it->first != v) return 0;
  return it->second;
}

void AdversarialArrival::register_metrics(obs::MetricRegistry& registry) {
  active_gauge_ = &registry.gauge("adversary.active_sources");
  headroom_gauge_ = &registry.gauge("adversary.envelope_headroom");
}

void AdversarialArrival::save_state(std::ostream& os) const {
  std::uint32_t entries = 0;
  for (const std::int64_t b : bucket_) {
    if (b != kFresh) ++entries;
  }
  binio::write_u32(os, static_cast<std::uint32_t>(bucket_.size()));
  binio::write_u64(os, cursor_);
  binio::write_u32(os, entries);
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    if (bucket_[i] == kFresh) continue;
    binio::write_u32(os, static_cast<std::uint32_t>(i));
    binio::write_i64(os, bucket_[i]);
    binio::write_i64(os, last_[i]);
  }
}

void AdversarialArrival::load_state(std::istream& is) {
  const std::uint32_t size = binio::read_u32(is);
  if (size > kMaxStateNodes) bad_state("implausible node count");
  const std::uint64_t cursor = binio::read_u64(is);
  const std::uint32_t entries = binio::read_u32(is);
  if (entries > size) bad_state("more entries than nodes");
  bucket_.assign(size, kFresh);
  last_.assign(size, 0);
  cursor_ = cursor;
  const std::int64_t cap = core::envelope::to_units(opt_.sigma);
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < entries; ++i) {
    const std::uint32_t idx = binio::read_u32(is);
    if (idx >= size) bad_state("entry index out of range");
    if (static_cast<std::int64_t>(idx) <= prev) {
      bad_state("entry indices not strictly ascending");
    }
    const std::int64_t units = binio::read_i64(is);
    if (units < 0 || units > cap) {
      bad_state("token balance outside [0, sigma]");
    }
    const std::int64_t last = binio::read_i64(is);
    if (last < 0) bad_state("negative refill timestamp");
    bucket_[idx] = units;
    last_[idx] = last;
    prev = idx;
  }
  active_.clear();
  planned_.clear();
}

}  // namespace lgg::traffic
