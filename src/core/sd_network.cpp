#include "core/sd_network.hpp"

#include <algorithm>
#include <sstream>

namespace lgg::core {

namespace {

/// Keeps `ids` a sorted set: v is present iff `member`.
void sync_membership(std::vector<NodeId>& ids, NodeId v, bool member) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), v);
  const bool present = it != ids.end() && *it == v;
  if (member && !present) {
    ids.insert(it, v);
  } else if (!member && present) {
    ids.erase(it);
  }
}

}  // namespace

void SdNetwork::update_role_index(NodeId v) {
  const NodeSpec& s = specs_[static_cast<std::size_t>(v)];
  sync_membership(source_ids_, v, s.in > 0);
  sync_membership(sink_ids_, v, s.out > 0);
  sync_membership(retention_ids_, v, s.retention > 0);
}

void SdNetwork::set_source(NodeId v, Cap in_rate) {
  LGG_REQUIRE(graph_.valid_node(v), "set_source: bad node");
  LGG_REQUIRE(in_rate > 0, "set_source: in(s) must be positive");
  specs_[static_cast<std::size_t>(v)] = NodeSpec{in_rate, 0, 0};
  update_role_index(v);
}

void SdNetwork::set_sink(NodeId v, Cap out_rate) {
  LGG_REQUIRE(graph_.valid_node(v), "set_sink: bad node");
  LGG_REQUIRE(out_rate > 0, "set_sink: out(d) must be positive");
  specs_[static_cast<std::size_t>(v)] = NodeSpec{0, out_rate, 0};
  update_role_index(v);
}

void SdNetwork::set_generalized(NodeId v, Cap in_rate, Cap out_rate,
                                Cap retention) {
  LGG_REQUIRE(graph_.valid_node(v), "set_generalized: bad node");
  LGG_REQUIRE(in_rate >= 0 && out_rate >= 0 && retention >= 0,
              "set_generalized: rates and retention must be non-negative");
  LGG_REQUIRE(in_rate > 0 || out_rate > 0 || retention > 0,
              "set_generalized: use clear_role for a plain relay");
  specs_[static_cast<std::size_t>(v)] = NodeSpec{in_rate, out_rate, retention};
  update_role_index(v);
}

void SdNetwork::clear_role(NodeId v) {
  LGG_REQUIRE(graph_.valid_node(v), "clear_role: bad node");
  specs_[static_cast<std::size_t>(v)] = NodeSpec{};
  update_role_index(v);
}

void SdNetwork::set_spec(NodeId v, NodeSpec spec) {
  LGG_REQUIRE(graph_.valid_node(v), "set_spec: bad node");
  LGG_REQUIRE(spec.in >= 0 && spec.out >= 0 && spec.retention >= 0,
              "set_spec: rates and retention must be non-negative");
  specs_[static_cast<std::size_t>(v)] = spec;
  update_role_index(v);
}

std::vector<NodeId> SdNetwork::special_nodes() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    const NodeSpec& s = specs_[static_cast<std::size_t>(v)];
    if (s.in > 0 || s.out > 0 || s.retention > 0) out.push_back(v);
  }
  return out;
}

Cap SdNetwork::arrival_rate() const {
  Cap total = 0;
  for (const NodeSpec& s : specs_) total += s.in;
  return total;
}

Cap SdNetwork::extraction_rate() const {
  Cap total = 0;
  for (const NodeSpec& s : specs_) total += s.out;
  return total;
}

Cap SdNetwork::max_out() const {
  Cap best = 0;
  for (const NodeSpec& s : specs_) best = std::max(best, s.out);
  return best;
}

Cap SdNetwork::max_retention() const {
  Cap best = 0;
  for (const NodeSpec& s : specs_) best = std::max(best, s.retention);
  return best;
}

bool SdNetwork::is_generalized() const {
  for (const NodeSpec& s : specs_) {
    if (s.retention > 0) return true;
    if (s.in > 0 && s.out > 0) return true;
  }
  return false;
}

std::vector<flow::RatedNode> SdNetwork::source_rates() const {
  std::vector<flow::RatedNode> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    const Cap in = specs_[static_cast<std::size_t>(v)].in;
    if (in > 0) out.push_back({v, in});
  }
  return out;
}

std::vector<flow::RatedNode> SdNetwork::sink_rates() const {
  std::vector<flow::RatedNode> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    const Cap o = specs_[static_cast<std::size_t>(v)].out;
    if (o > 0) out.push_back({v, o});
  }
  return out;
}

void SdNetwork::validate() const {
  LGG_REQUIRE(node_count() >= 1, "SdNetwork: empty graph");
  LGG_REQUIRE(!sources().empty(), "SdNetwork: no sources (some in(v) > 0)");
  LGG_REQUIRE(!sinks().empty(), "SdNetwork: no sinks (some out(v) > 0)");
}

flow::FeasibilityReport analyze(const SdNetwork& net) {
  net.validate();
  const auto src = net.source_rates();
  const auto dst = net.sink_rates();
  return flow::analyze_feasibility(net.topology(), src, dst);
}

std::string describe(const SdNetwork& net,
                     const flow::FeasibilityReport& report) {
  std::ostringstream os;
  os << "n=" << net.node_count() << " delta=" << net.max_degree()
     << " |S|=" << net.sources().size() << " |D|=" << net.sinks().size()
     << " rate=" << report.arrival_rate << " f*=" << report.fstar
     << (report.feasible ? " feasible" : " INFEASIBLE")
     << (report.unsaturated ? " unsaturated" : " saturated")
     << " eps=" << report.epsilon;
  if (net.is_generalized()) os << " R=" << net.max_retention();
  return os.str();
}

}  // namespace lgg::core
