#include "core/protocol.hpp"

#include <map>
#include <sstream>

namespace lgg::core {

std::string check_transmission_contract(const StepView& view,
                                        std::span<const Transmission> txs) {
  const graph::Multigraph& g = view.net->topology();
  std::map<std::pair<EdgeId, NodeId>, int> per_direction;
  std::vector<PacketCount> sent(static_cast<std::size_t>(g.node_count()), 0);
  for (const Transmission& tx : txs) {
    std::ostringstream err;
    if (!g.valid_edge(tx.edge)) {
      err << "invalid edge id " << tx.edge;
      return err.str();
    }
    const graph::Endpoints ep = g.endpoints(tx.edge);
    const bool matches = (ep.u == tx.from && ep.v == tx.to) ||
                         (ep.v == tx.from && ep.u == tx.to);
    if (!matches) {
      err << "transmission endpoints do not match edge " << tx.edge;
      return err.str();
    }
    if (view.active != nullptr && !view.active->active(tx.edge)) {
      err << "transmission on inactive edge " << tx.edge;
      return err.str();
    }
    if (++per_direction[{tx.edge, tx.from}] > 1) {
      err << "edge " << tx.edge << " used twice in the same direction";
      return err.str();
    }
    ++sent[static_cast<std::size_t>(tx.from)];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (sent[static_cast<std::size_t>(v)] >
        view.queue[static_cast<std::size_t>(v)]) {
      std::ostringstream err;
      err << "node " << v << " sends " << sent[static_cast<std::size_t>(v)]
          << " packets but holds only "
          << view.queue[static_cast<std::size_t>(v)];
      return err.str();
    }
  }
  return {};
}

}  // namespace lgg::core
