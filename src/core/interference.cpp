#include "core/interference.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <numeric>

#include "obs/registry.hpp"

namespace lgg::core {

PacketCount transmission_weight(const StepView& view, const Transmission& tx) {
  return view.queue[static_cast<std::size_t>(tx.from)] -
         view.declared[static_cast<std::size_t>(tx.to)];
}

namespace {

std::vector<std::size_t> by_weight_desc(const StepView& view,
                                        std::span<const Transmission> txs) {
  std::vector<std::size_t> order(txs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return transmission_weight(view, txs[a]) >
                            transmission_weight(view, txs[b]);
                   });
  return order;
}

}  // namespace

void GreedyMatchingScheduler::schedule(const StepView& view,
                                       std::span<const Transmission> txs,
                                       Rng&, std::vector<char>& keep) {
  std::vector<char> busy(static_cast<std::size_t>(view.net->node_count()), 0);
  for (const std::size_t i : by_weight_desc(view, txs)) {
    const Transmission& tx = txs[i];
    if (busy[static_cast<std::size_t>(tx.from)] ||
        busy[static_cast<std::size_t>(tx.to)]) {
      keep[i] = 0;
    } else {
      busy[static_cast<std::size_t>(tx.from)] = 1;
      busy[static_cast<std::size_t>(tx.to)] = 1;
    }
  }
}

void ExactMatchingScheduler::schedule(const StepView& view,
                                      std::span<const Transmission> txs,
                                      Rng&, std::vector<char>& keep) {
  if (txs.empty()) return;
  // Compact the endpoints actually used into a small index space.
  std::map<NodeId, int> index;
  for (const Transmission& tx : txs) {
    index.emplace(tx.from, 0);
    index.emplace(tx.to, 0);
  }
  LGG_REQUIRE(static_cast<NodeId>(index.size()) <= kExactMatchingMaxNodes,
              "ExactMatchingScheduler: too many distinct endpoints for the "
              "exact oracle (use GreedyMatchingScheduler)");
  int next = 0;
  for (auto& [node, idx] : index) idx = next++;

  struct Candidate {
    std::uint32_t nodes;  // bitmask over compacted endpoints
    PacketCount weight;
    std::size_t tx_index;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    const auto a = static_cast<std::uint32_t>(index[txs[i].from]);
    const auto b = static_cast<std::uint32_t>(index[txs[i].to]);
    candidates.push_back(
        {(1u << a) | (1u << b), transmission_weight(view, txs[i]), i});
  }

  // dp[mask] = best total weight using only endpoints outside `mask`;
  // choice[mask] = candidate picked first, or -1 for "skip lowest node".
  const auto n = static_cast<std::uint32_t>(index.size());
  const std::size_t size = std::size_t{1} << n;
  std::vector<PacketCount> dp(size, std::numeric_limits<PacketCount>::min());
  std::vector<std::int32_t> choice(size, -1);
  // Group candidates by their lowest endpoint for the classic "decide the
  // lowest free node" recursion, iterative over decreasing free sets.
  std::vector<std::vector<std::int32_t>> by_low(n);
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    const auto low = static_cast<std::uint32_t>(
        std::countr_zero(candidates[c].nodes));
    by_low[low].push_back(static_cast<std::int32_t>(c));
  }
  dp[size - 1] = 0;  // all endpoints used: nothing more to gain
  for (std::size_t mask = size - 1; mask-- > 0;) {
    // Lowest endpoint not yet used.
    const auto low = static_cast<std::uint32_t>(
        std::countr_zero(~static_cast<std::uint32_t>(mask) &
                         ((1u << n) - 1)));
    // Option 1: leave `low` unmatched.
    PacketCount best = dp[mask | (1u << low)];
    std::int32_t best_choice = -1;
    // Option 2: fire a candidate whose lowest endpoint is `low` and whose
    // other endpoint is also free.
    for (const std::int32_t c : by_low[low]) {
      const Candidate& cand = candidates[static_cast<std::size_t>(c)];
      if ((cand.nodes & static_cast<std::uint32_t>(mask)) != 0) continue;
      const PacketCount total = cand.weight + dp[mask | cand.nodes];
      if (total > best) {
        best = total;
        best_choice = c;
      }
    }
    dp[mask] = best;
    choice[mask] = best_choice;
  }

  // Recover the optimal matching and suppress everything else.
  std::fill(keep.begin(), keep.end(), 0);
  std::uint32_t mask = 0;
  while (mask != (1u << n) - 1) {
    const std::int32_t c = choice[mask];
    const auto low = static_cast<std::uint32_t>(
        std::countr_zero(~mask & ((1u << n) - 1)));
    if (c < 0) {
      mask |= 1u << low;
    } else {
      const Candidate& cand = candidates[static_cast<std::size_t>(c)];
      keep[cand.tx_index] = 1;
      mask |= cand.nodes;
    }
  }
}

void OracleOrGreedyScheduler::schedule(const StepView& view,
                                       std::span<const Transmission> txs,
                                       Rng& rng, std::vector<char>& keep) {
  if (txs.empty()) return;
  std::map<NodeId, int> endpoints;
  for (const Transmission& tx : txs) {
    endpoints.emplace(tx.from, 0);
    endpoints.emplace(tx.to, 0);
  }
  if (static_cast<NodeId>(endpoints.size()) <= kExactMatchingMaxNodes) {
    ++exact_steps_;
    if (exact_counter_ != nullptr) exact_counter_->add(1);
    exact_.schedule(view, txs, rng, keep);
  } else {
    ++greedy_steps_;
    if (greedy_counter_ != nullptr) greedy_counter_->add(1);
    greedy_.schedule(view, txs, rng, keep);
  }
}

void OracleOrGreedyScheduler::register_metrics(obs::MetricRegistry& registry) {
  exact_counter_ = &registry.counter("scheduler.exact_steps");
  greedy_counter_ = &registry.counter("scheduler.greedy_steps");
}

void Distance2GreedyScheduler::schedule(const StepView& view,
                                        std::span<const Transmission> txs,
                                        Rng&, std::vector<char>& keep) {
  // blocked[v]: v or one of its neighbours already participates.
  std::vector<char> busy(static_cast<std::size_t>(view.net->node_count()), 0);
  std::vector<char> near_busy(busy.size(), 0);
  const graph::Multigraph& g = view.net->topology();
  const auto occupy = [&](NodeId v) {
    busy[static_cast<std::size_t>(v)] = 1;
    near_busy[static_cast<std::size_t>(v)] = 1;
    for (const graph::IncidentLink& l : g.incident(v)) {
      near_busy[static_cast<std::size_t>(l.neighbor)] = 1;
    }
  };
  for (const std::size_t i : by_weight_desc(view, txs)) {
    const Transmission& tx = txs[i];
    if (near_busy[static_cast<std::size_t>(tx.from)] ||
        near_busy[static_cast<std::size_t>(tx.to)]) {
      keep[i] = 0;
    } else {
      occupy(tx.from);
      occupy(tx.to);
    }
  }
}

bool is_matching(std::span<const Transmission> txs,
                 std::span<const char> keep, NodeId node_count) {
  std::vector<char> busy(static_cast<std::size_t>(node_count), 0);
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (!keep[i]) continue;
    if (busy[static_cast<std::size_t>(txs[i].from)] ||
        busy[static_cast<std::size_t>(txs[i].to)]) {
      return false;
    }
    busy[static_cast<std::size_t>(txs[i].from)] = 1;
    busy[static_cast<std::size_t>(txs[i].to)] = 1;
  }
  return true;
}

}  // namespace lgg::core
