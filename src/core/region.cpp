#include "core/region.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"

namespace lgg::core {

bool load_is_stable(const LoadProbe& probe, double load,
                    const RegionOptions& options) {
  LGG_REQUIRE(static_cast<bool>(probe), "load_is_stable: empty probe");
  LGG_REQUIRE(options.replicates >= 1, "load_is_stable: replicates >= 1");
  int not_diverging = 0;
  for (int k = 0; k < options.replicates; ++k) {
    const Verdict v =
        probe(load, derive_seed(options.seed, static_cast<std::uint64_t>(k)));
    if (v != Verdict::kDiverging) ++not_diverging;
  }
  return 2 * not_diverging > options.replicates;
}

double critical_load(const LoadProbe& probe, RegionOptions options) {
  LGG_REQUIRE(options.lo > 0 && options.lo < options.hi,
              "critical_load: need 0 < lo < hi");
  LGG_REQUIRE(options.tolerance > 0, "critical_load: tolerance > 0");
  double lo = options.lo;
  double hi = options.hi;
  if (!load_is_stable(probe, lo, options)) return 0.0;
  if (load_is_stable(probe, hi, options)) return hi;
  while (hi - lo > options.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (load_is_stable(probe, mid, options)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace lgg::core
