// Pre-injection admission control hook.
//
// The simulator consults an attached AdmissionController once per step,
// immediately before the injection phase: `begin_step` sees the pre-injection
// potential P_t = sum q^2 (the control signal the paper's dichotomy is built
// on), then `admit` gates each source's offered packet count.  Shed packets
// are never injected, so the conservation audit is untouched; they are
// accounted separately in StepStats::shed.
//
// This header lives in core (not src/control/) so the simulator does not
// depend on the control plane: core sees only this abstract interface, and
// control::AdmissionGovernor implements it.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "common/types.hpp"

namespace lgg::graph {
class EdgeMask;
}  // namespace lgg::graph

namespace lgg::obs {
class MetricRegistry;
}  // namespace lgg::obs

namespace lgg::core {

class SdNetwork;
struct TopologyDelta;

class AdmissionController {
 public:
  /// Everything the controller may observe at the top of a step.  `net` and
  /// `active_mask` stay valid for the duration of the step; the mask already
  /// reflects this step's churn, so a feasibility certificate recomputed from
  /// it is exact for the current topology.
  struct StepContext {
    TimeStep t = 0;
    double potential = 0.0;  ///< P_t before injection (crash wipes applied).
    std::uint64_t topology_version = 0;
    const SdNetwork* net = nullptr;
    const graph::EdgeMask* active_mask = nullptr;
    /// Exactly what this step's scheduled churn mutated (nullptr when no
    /// churn fired) — controllers holding warm-started feasibility state
    /// patch per entry instead of recomputing from scratch.
    const TopologyDelta* churn = nullptr;
  };

  virtual ~AdmissionController() = default;

  /// Called once per step before any `admit` call of that step.
  virtual void begin_step(const StepContext& ctx) = 0;

  /// Gate one source's injection: `offered` packets arrived (arrival process
  /// plus any fault surge) at source `v` whose declared rate is `in_rate`.
  /// Returns how many to actually inject, in [0, offered].  The difference
  /// is shed.
  virtual PacketCount admit(NodeId v, Cap in_rate, PacketCount offered) = 0;

  /// Current saturation mode as a small integer (control::SaturationMode);
  /// exposed untyped so core needs no control-plane headers.
  [[nodiscard]] virtual int mode() const = 0;

  /// Total packets shed since construction (or state load).
  [[nodiscard]] virtual PacketCount total_shed() const = 0;

  /// Bound that P_t must stay under once the controller has engaged (shed at
  /// least once).  0 while never engaged — callers skip the check then.
  [[nodiscard]] virtual double overload_bound() const { return 0.0; }

  /// Register controller metrics (multiplier, drift estimate, ...) with the
  /// simulator's telemetry registry.  Optional.
  virtual void register_metrics(obs::MetricRegistry& registry) {
    (void)registry;
  }

  /// Checkpoint support.  Admission state affects the trajectory, so the
  /// checkpoint layer treats presence strictly: a governed checkpoint only
  /// restores into a governed simulator and vice versa.
  virtual void save_state(std::ostream& out) const = 0;
  virtual void load_state(std::istream& in) = 0;
};

}  // namespace lgg::core
