#include "core/ckpt_chain.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/failpoint.hpp"
#include "common/require.hpp"
#include "core/checkpoint.hpp"
#include "core/simulator.hpp"

namespace lgg::core {

namespace {

constexpr char kManifestMagic[] = "lgg-ckpt-manifest v1";

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash + 1);
}

std::string base_name(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

[[noreturn]] void fail(const std::string& what) {
  throw CheckpointError("checkpoint chain: " + what);
}

std::string render_manifest(const ChainManifest& manifest) {
  std::ostringstream os;
  os << kManifestMagic << '\n';
  os << "retain " << manifest.retain << '\n';
  for (const GenerationEntry& e : manifest.entries) {
    os << "generation " << e.generation << ' ' << e.file << ' ' << e.step
       << ' ' << e.crc << ' ' << e.size << ' ' << e.telemetry_offset << '\n';
  }
  const std::string body = os.str();
  char crc_line[32];
  std::snprintf(crc_line, sizeof(crc_line), "crc %08X\n",
                crc32(body.data(), body.size()));
  return body + crc_line;
}

}  // namespace

CheckpointChain::CheckpointChain(std::string base_path, int retain)
    : base_(std::move(base_path)), retain_(retain) {
  LGG_REQUIRE(retain_ >= 1, "CheckpointChain: retain >= 1");
  LGG_REQUIRE(!base_.empty(), "CheckpointChain: empty base path");
  if (auto existing = read_manifest(manifest_path())) {
    manifest_ = std::move(*existing);
  }
  manifest_.retain = retain_;
}

std::string CheckpointChain::generation_path(std::uint64_t generation) const {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".gen%06llu",
                static_cast<unsigned long long>(generation));
  return base_ + suffix;
}

std::uint64_t CheckpointChain::latest() const {
  return manifest_.entries.empty() ? 0 : manifest_.entries.front().generation;
}

void CheckpointChain::write_manifest() {
  if (!common::write_file_durable(manifest_path(), render_manifest(manifest_),
                                  "manifest")) {
    fail("manifest write to '" + manifest_path() + "' failed");
  }
}

void CheckpointChain::append(const Simulator& sim,
                             std::uint64_t telemetry_offset) {
  std::ostringstream os(std::ios::binary);
  sim.save_checkpoint(os);
  const std::string bytes = os.str();

  GenerationEntry entry;
  entry.generation = latest() + 1;
  entry.step = sim.now();
  entry.crc = crc32(bytes.data(), bytes.size());
  entry.size = bytes.size();
  entry.telemetry_offset = telemetry_offset;
  const std::string path = generation_path(entry.generation);
  entry.file = base_name(path);

  // Stage 1: the generation file, durably.  The manifest still names the
  // previous newest, so a death here loses nothing.
  if (!common::write_file_durable(path, bytes, "ckpt")) {
    fail("generation write to '" + path + "' failed");
  }

  // Stage 2: the manifest, durably, naming the new generation — with the
  // ring already trimmed, but the trimmed files still on disk.
  std::vector<GenerationEntry> pruned;
  manifest_.entries.insert(manifest_.entries.begin(), entry);
  while (static_cast<int>(manifest_.entries.size()) > retain_) {
    pruned.push_back(manifest_.entries.back());
    manifest_.entries.pop_back();
  }
  try {
    write_manifest();
  } catch (...) {
    // Roll the in-memory view back to match the on-disk manifest.
    manifest_.entries.erase(manifest_.entries.begin());
    for (auto it = pruned.rbegin(); it != pruned.rend(); ++it) {
      manifest_.entries.push_back(*it);
    }
    throw;
  }

  // Stage 3: only after the manifest no longer names them may the pruned
  // generations be unlinked.
  const std::string dir = dir_of(base_);
  for (const GenerationEntry& old : pruned) {
    std::remove((dir + old.file).c_str());
  }
}

std::optional<CheckpointChain::Recovery> CheckpointChain::recover(
    Simulator& sim,
    const std::function<void(std::uint64_t)>& telemetry_rewind) {
  // The on-disk manifest is authoritative: this process (or its
  // predecessor) may have died with the in-memory view ahead of it.
  auto on_disk = read_manifest(manifest_path());
  if (!on_disk.has_value()) return std::nullopt;
  manifest_.entries = std::move(on_disk->entries);
  manifest_.retain = retain_;

  const std::string dir = dir_of(base_);
  int depth = 0;
  while (!manifest_.entries.empty()) {
    const GenerationEntry entry = manifest_.entries.front();
    const std::string path = dir + entry.file;
    try {
      // Cheap outer integrity gate first: the manifest's whole-file CRC
      // and size catch any corruption — including bytes the checkpoint
      // parser's own payload CRC doesn't cover — before deserialization
      // is even attempted.
      {
        std::ifstream is(path, std::ios::binary);
        if (!is.is_open()) fail("generation file '" + path + "' missing");
        std::ostringstream buffer;
        buffer << is.rdbuf();
        const std::string bytes = buffer.str();
        if (bytes.size() != entry.size ||
            crc32(bytes.data(), bytes.size()) != entry.crc) {
          fail("generation file '" + path + "' fails its manifest CRC");
        }
      }
      restore_checkpoint_file(sim, path);
      if (depth > 0) {
        // Publish the pruned view so a later process (a fresh chain
        // adopting this manifest) re-issues the same generation numbers
        // an uninterrupted run would — the file ring stays bitwise
        // reproducible across rollbacks.  Best effort: a failure here
        // only means the dead entries get re-dropped next recovery.
        try {
          write_manifest();
        } catch (const std::exception&) {
        }
      }
      if (telemetry_rewind) telemetry_rewind(entry.telemetry_offset);
      Recovery recovery;
      recovery.generation = entry.generation;
      recovery.step = sim.now();
      recovery.telemetry_offset = entry.telemetry_offset;
      recovery.rollback_depth = depth;
      return recovery;
    } catch (const std::exception&) {
      // CRC failure, truncation, or a deserialize mismatch: this
      // generation is dead.  Drop it — entry, then file — and try the
      // next-older one.
      manifest_.entries.erase(manifest_.entries.begin());
      std::remove(path.c_str());
      ++depth;
    }
  }
  return std::nullopt;
}

std::optional<ChainManifest> CheckpointChain::read_manifest(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const std::string text = buffer.str();

  // Split off and verify the trailing crc line before believing a byte.
  const std::size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return std::nullopt;
  }
  const std::string body = text.substr(0, crc_pos);
  // The crc line is rendered as exactly "crc %08X\n" and must end the
  // file: the CRC cannot cover bytes after itself, so any trailing slack
  // (a torn rewrite, appended junk) is treated as corruption.
  const std::string crc_line = text.substr(crc_pos);
  if (crc_line.size() != 13 || crc_line.back() != '\n' ||
      crc_line.find_first_not_of("0123456789ABCDEF", 4) != 12) {
    return std::nullopt;
  }
  unsigned long want = 0;
  if (std::sscanf(crc_line.c_str(), "crc %8lX", &want) != 1) {
    return std::nullopt;
  }
  if (crc32(body.data(), body.size()) != static_cast<std::uint32_t>(want)) {
    return std::nullopt;
  }

  std::istringstream lines(body);
  std::string line;
  if (!std::getline(lines, line) || line != kManifestMagic) {
    return std::nullopt;
  }
  ChainManifest manifest;
  bool saw_retain = false;
  std::uint64_t prev_generation = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "retain") {
      if (!(fields >> manifest.retain) || manifest.retain < 1) {
        return std::nullopt;
      }
      saw_retain = true;
    } else if (key == "generation") {
      GenerationEntry entry;
      if (!(fields >> entry.generation >> entry.file >> entry.step >>
            entry.crc >> entry.size >> entry.telemetry_offset)) {
        return std::nullopt;
      }
      // Entries are newest first with strictly decreasing numbers; a
      // violation means the manifest was hand-mangled.
      if (!manifest.entries.empty() && entry.generation >= prev_generation) {
        return std::nullopt;
      }
      prev_generation = entry.generation;
      manifest.entries.push_back(std::move(entry));
    } else {
      return std::nullopt;
    }
  }
  if (!saw_retain) return std::nullopt;
  return manifest;
}

}  // namespace lgg::core
