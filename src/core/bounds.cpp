#include "core/bounds.hpp"

namespace lgg::core {

UnsaturatedBounds unsaturated_bounds(const SdNetwork& net,
                                     const flow::FeasibilityReport& report) {
  LGG_REQUIRE(report.unsaturated,
              "unsaturated_bounds: network is not unsaturated");
  UnsaturatedBounds b;
  b.n = net.node_count();
  b.delta = net.max_degree();
  b.fstar = report.fstar;
  b.epsilon = report.epsilon;
  const auto n = static_cast<double>(b.n);
  const auto d2 = static_cast<double>(b.delta) * static_cast<double>(b.delta);
  b.growth = 5.0 * n * d2;
  b.y = (5.0 * n * static_cast<double>(b.fstar) / b.epsilon + 3.0 * n) * d2;
  b.state = n * b.y * b.y + b.growth;
  return b;
}

double GeneralizedBounds::drift_threshold(double epsilon) const {
  LGG_REQUIRE(epsilon > 0, "drift_threshold: epsilon > 0");
  const auto nn = static_cast<double>(n);
  const auto sd = static_cast<double>(special);
  const auto d = static_cast<double>(delta);
  const auto r = static_cast<double>(retention);
  const auto omax = static_cast<double>(out_max);
  return (d * d * (3.0 * nn - 2.0 * sd) + 7.0 * sd * r * d) / epsilon +
         sd * (r + omax) * omax;
}

GeneralizedBounds generalized_bounds(const SdNetwork& net) {
  GeneralizedBounds b;
  b.n = net.node_count();
  b.delta = net.max_degree();
  b.special = static_cast<Cap>(net.special_nodes().size());
  b.out_max = net.max_out();
  b.retention = net.max_retention();
  const auto n = static_cast<double>(b.n);
  const auto sd = static_cast<double>(b.special);
  const auto d = static_cast<double>(b.delta);
  const auto r = static_cast<double>(b.retention);
  const auto omax = static_cast<double>(b.out_max);
  b.growth = 2.0 * sd * (r + omax) * omax + d * d * (3.0 * n - 2.0 * sd) +
             4.0 * sd * d * r;
  return b;
}

}  // namespace lgg::core
