#include "core/latency.hpp"

#include <algorithm>

#include "analysis/stats.hpp"

namespace lgg::core {

void LatencyTracker::on_step(const StepRecord& record) {
  const auto n = static_cast<std::size_t>(record.net->node_count());
  if (!initialized_) {
    birth_.assign(n, {});
    // Pre-seeded initial queues are stamped with the first observed step.
    for (std::size_t v = 0; v < n; ++v) {
      for (PacketCount i = 0; i < record.before_injection[v]; ++i) {
        birth_[v].push_back(record.t);
      }
    }
    initialized_ = true;
  }
  // Injections.
  for (std::size_t v = 0; v < n; ++v) {
    const PacketCount injected =
        record.at_selection[v] - record.before_injection[v];
    for (PacketCount i = 0; i < injected; ++i) birth_[v].push_back(record.t);
  }
  // Transmissions move the oldest packet of the sender.
  for (std::size_t i = 0; i < record.transmissions.size(); ++i) {
    if (!record.kept[i]) continue;
    const Transmission& tx = record.transmissions[i];
    auto& from = birth_[static_cast<std::size_t>(tx.from)];
    LGG_ASSERT(!from.empty());
    const TimeStep stamp = from.front();
    from.pop_front();
    if (record.lost[i]) {
      ++lost_;
    } else {
      birth_[static_cast<std::size_t>(tx.to)].push_back(stamp);
    }
  }
  // Extraction retires the oldest packets; the amount is recovered from
  // the queue balance.
  for (std::size_t v = 0; v < n; ++v) {
    const PacketCount extracted =
        static_cast<PacketCount>(birth_[v].size()) - record.after_step[v];
    LGG_ASSERT(extracted >= 0);
    for (PacketCount i = 0; i < extracted; ++i) {
      const TimeStep stamp = birth_[v].front();
      birth_[v].pop_front();
      samples_.push_back(static_cast<double>(record.t - stamp + 1));
    }
  }
}

LatencyStats LatencyTracker::stats() const {
  LatencyStats stats;
  stats.delivered = static_cast<std::int64_t>(samples_.size());
  stats.lost = lost_;
  if (samples_.empty()) return stats;
  const analysis::Summary summary = analysis::summarize(samples_);
  stats.mean = summary.mean;
  stats.max = summary.max;
  stats.p50 = analysis::quantile(samples_, 0.5);
  stats.p95 = analysis::quantile(samples_, 0.95);
  return stats;
}

}  // namespace lgg::core
