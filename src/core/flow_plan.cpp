#include "core/flow_plan.hpp"

#include <algorithm>
#include <map>

#include "flow/max_flow.hpp"
#include "flow/path_decomposition.hpp"

namespace lgg::core {

FlowPlan build_flow_plan(const SdNetwork& net, const graph::EdgeMask* mask) {
  const graph::Multigraph& g = net.topology();
  const auto sources = net.source_rates();
  const auto sinks = net.sink_rates();

  flow::FlowNetwork fn(g.node_count());
  const NodeId s_star = fn.add_node();
  const NodeId d_star = fn.add_node();
  for (const flow::RatedNode& rn : sources) fn.add_arc(s_star, rn.node, rn.rate);
  for (const flow::RatedNode& rn : sinks) fn.add_arc(rn.node, d_star, rn.rate);

  std::map<flow::ArcId, Transmission> arc_to_hop;
  std::vector<std::pair<flow::ArcId, flow::ArcId>> edge_arcs;
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    if (mask != nullptr && !mask->active(e)) continue;
    const graph::Endpoints ep = g.endpoints(e);
    const flow::ArcId fwd = fn.add_arc(ep.u, ep.v, 1);
    const flow::ArcId bwd = fn.add_arc(ep.v, ep.u, 1);
    arc_to_hop.emplace(fwd, Transmission{e, ep.u, ep.v});
    arc_to_hop.emplace(bwd, Transmission{e, ep.v, ep.u});
    edge_arcs.emplace_back(fwd, bwd);
  }

  FlowPlan plan;
  plan.value = flow::solve_max_flow(fn, s_star, d_star);
  // Opposite flows on one undirected link are an encoding artifact.
  for (const auto& [fwd, bwd] : edge_arcs) {
    const Cap m = std::min(fn.flow(fwd), fn.flow(bwd));
    if (m > 0) {
      fn.push(fwd ^ 1, m);
      fn.push(bwd ^ 1, m);
    }
  }
  for (const flow::FlowPath& path :
       flow::decompose_into_paths(fn, s_star, d_star)) {
    std::vector<Transmission> hops;
    for (const flow::ArcId a : path.arcs) {
      const auto it = arc_to_hop.find(a);
      if (it != arc_to_hop.end()) hops.push_back(it->second);
    }
    // Internal arcs have capacity 1, so a path with hops has amount 1;
    // hop-less paths (s* -> v -> d* at a generalized node) are omitted.
    if (!hops.empty()) plan.paths.push_back(std::move(hops));
  }
  return plan;
}

}  // namespace lgg::core
