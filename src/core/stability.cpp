#include "core/stability.hpp"

#include <algorithm>

#include "analysis/stats.hpp"
#include "analysis/timeseries.hpp"
#include "common/require.hpp"

namespace lgg::core {

std::string_view to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kStable: return "stable";
    case Verdict::kDiverging: return "diverging";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

StabilityReport assess_stability(std::span<const double> network_state,
                                 std::optional<double> theoretical_bound,
                                 const StabilityOptions& options) {
  StabilityReport report;
  if (network_state.empty()) return report;

  report.max_state =
      *std::max_element(network_state.begin(), network_state.end());
  report.final_state = network_state.back();
  const auto tail_view =
      analysis::tail(network_state, options.tail_fraction);
  report.tail_mean = analysis::summarize(tail_view).mean;
  report.tail_slope =
      analysis::tail_slope(network_state, options.tail_fraction);
  if (theoretical_bound.has_value()) {
    report.within_bound = report.max_state <= *theoretical_bound;
  }
  if (network_state.size() < options.min_length) return report;

  const auto windows = analysis::window_means(network_state, 4);
  LGG_ASSERT(windows.size() == 4);
  // Compare the last window to the second: a diverging quadratic grows by
  // ~(7/3)² between them; a bounded trajectory stays flat.
  const double early = windows[1] + options.slack;
  const double late = windows[3];
  if (late > options.diverging_ratio * early) {
    report.verdict = Verdict::kDiverging;
  } else if (late <= options.stable_ratio * early) {
    report.verdict = Verdict::kStable;
  } else {
    report.verdict = Verdict::kInconclusive;
  }
  return report;
}

bool returns_below(std::span<const double> series, double bound,
                   std::size_t min_returns) {
  const auto half = analysis::tail(series, 0.5);
  return analysis::count_below(half, bound) >= min_returns;
}

}  // namespace lgg::core
