// The Section V-C induction step, as executable code.
//
// Given a feasible R-generalized S-D-network G whose extended graph G* has
// a minimum cut (A, B) with real nodes on both sides, the proof of
// Theorem 2 decomposes G into
//
//   * B' — the B side viewed as an R-generalized S'-D'-network: every node
//     x in B adjacent to A becomes (or absorbs into) a generalized source
//     with in_{B'}(x) = in(x) + |Γ_A(x)| (its neighbours in A can push one
//     packet per connecting link per step);
//
//   * A' — the A side viewed as an R_B-generalized S''-D''-network: every
//     node y in A adjacent to B becomes (or absorbs into) a generalized
//     destination with out_{A'}(y) = out(y) + |Γ_B(y)|, where the
//     retention R_B is the (proved-bounded) packet mass of B.
//
// Both pieces are feasible (the original flow restricted to each side
// witnesses it — each cut link carries exactly one flow unit), D'' is
// non-empty (Remark 2), and both are strictly smaller than G, which is
// what lets the induction recurse.  decompose_at_cut() builds the two
// networks; find_internal_cut() locates a usable cut; verify_* helpers
// check the paper's side conditions and are exercised by tests and the
// induction bench.
#pragma once

#include <optional>
#include <vector>

#include "core/sd_network.hpp"

namespace lgg::core {

/// An internal minimum cut of G*, expressed over the real nodes of G.
struct InternalCut {
  /// side_a[v] != 0 iff v lies on the source side A.
  std::vector<char> side_a;
  /// Cut value (== Σ in(v), the arrival rate, for the cuts used in V-C).
  Cap value = 0;
  NodeId a_size = 0;  ///< real nodes in A
  NodeId b_size = 0;  ///< real nodes in B
};

/// Finds a minimum cut of G* with at least one real node on each side, if
/// one exists (Section V case 3).  Requires `net` to be feasible.
std::optional<InternalCut> find_internal_cut(const SdNetwork& net);

/// The two sub-networks of the induction step.
struct CutDecomposition {
  InternalCut cut;

  /// B' : the B side with border nodes promoted to generalized sources.
  SdNetwork b_side;
  /// Maps B'-side node ids back to node ids of G.
  std::vector<NodeId> b_to_original;

  /// A' : the A side with border nodes promoted to generalized
  /// destinations carrying retention `retention_b`.
  SdNetwork a_side;
  std::vector<NodeId> a_to_original;

  /// The retention constant R_B used for A's border destinations.
  Cap retention_b = 0;
};

/// Builds the Section V-C decomposition of `net` at `cut`.
/// `retention_b` is the bound on B's packet mass (R_B); the caller obtains
/// it from theory (generalized bounds of B') or empirically.
CutDecomposition decompose_at_cut(const SdNetwork& net,
                                  const InternalCut& cut, Cap retention_b);

/// Remark 2: D'' (the destination set of the A side) must be non-empty.
bool verify_remark2(const CutDecomposition& decomposition);

/// Both pieces must be feasible (the restricted flow witnesses it).
bool verify_pieces_feasible(const CutDecomposition& decomposition);

/// Runs the full recursion: repeatedly find an internal cut and split,
/// collecting the leaf networks (those with no internal cut — the
/// Sections V-A / V-B base cases).  Returns the number of induction steps
/// taken and the leaf count; every intermediate invariant is checked via
/// LGG_REQUIRE.  `max_depth` guards against non-termination.
struct InductionTrace {
  int splits = 0;
  int leaves = 0;
  NodeId largest_leaf = 0;
};
InductionTrace run_induction(const SdNetwork& net, int max_depth = 64);

}  // namespace lgg::core
