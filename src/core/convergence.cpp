#include "core/convergence.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/stats.hpp"
#include "analysis/timeseries.hpp"
#include "common/require.hpp"

namespace lgg::core {

double plateau_level(std::span<const double> network_state,
                     const SettleOptions& options) {
  LGG_REQUIRE(options.plateau_fraction > 0 && options.plateau_fraction <= 1,
              "plateau_level: fraction in (0, 1]");
  if (network_state.empty()) return 0.0;
  return analysis::summarize(
             analysis::tail(network_state, options.plateau_fraction))
      .mean;
}

std::optional<TimeStep> settle_time(std::span<const double> network_state,
                                    const SettleOptions& options) {
  LGG_REQUIRE(options.band >= 0, "settle_time: band >= 0");
  if (network_state.empty()) return std::nullopt;
  const double level = plateau_level(network_state, options);
  const double slack =
      std::max(options.absolute_slack, options.band * std::abs(level));
  const double lo = level - slack;
  const double hi = level + slack;
  // Scan backwards for the last excursion outside the band.
  std::ptrdiff_t last_outside = -1;
  for (std::ptrdiff_t t = static_cast<std::ptrdiff_t>(network_state.size()) - 1;
       t >= 0; --t) {
    const double x = network_state[static_cast<std::size_t>(t)];
    if (x < lo || x > hi) {
      last_outside = t;
      break;
    }
  }
  const auto settle = static_cast<TimeStep>(last_outside + 1);
  // "Never settles": the excursion reaches into the plateau window itself.
  const auto plateau_start = static_cast<TimeStep>(
      static_cast<double>(network_state.size()) *
      (1.0 - options.plateau_fraction));
  if (settle > plateau_start) return std::nullopt;
  return settle;
}

}  // namespace lgg::core
