#include "core/parallel_step.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/require.hpp"

namespace lgg::core {

namespace {

[[nodiscard]] std::size_t default_threads(std::uint32_t shard_count) {
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  return std::min<std::size_t>(shard_count, hw);
}

[[nodiscard]] std::uint64_t nanos_between(StepProfiler::Clock::time_point a,
                                          StepProfiler::Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

}  // namespace

ParallelStepEngine::ParallelStepEngine(Simulator& sim,
                                       std::uint32_t shard_count,
                                       std::size_t threads)
    : plan_(build_shard_plan(sim.net_, shard_count)),
      pool_(threads != 0 ? threads : default_threads(shard_count)),
      shards_(plan_.shard_count),
      merge_cursor_(plan_.shard_count, 0) {}

void ParallelStepEngine::merge_transmissions(std::vector<Transmission>& out) {
  // Each shard's list is grouped by sender in ascending order (shard node
  // lists are ascending, and select_for_nodes appends per node in the
  // order given), and the shards' sender sets are disjoint — so a k-way
  // merge by the smallest front sender reconstructs the serial engine's
  // ascending-sender proposal order exactly.
  std::size_t total = 0;
  for (const ShardScratch& sh : shards_) total += sh.txs.size();
  out.reserve(total);
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), std::size_t{0});
  for (;;) {
    std::size_t best = shards_.size();
    NodeId best_from = kInvalidNode;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::size_t c = merge_cursor_[s];
      if (c >= shards_[s].txs.size()) continue;
      const NodeId from = shards_[s].txs[c].from;
      if (best == shards_.size() || from < best_from) {
        best = s;
        best_from = from;
      }
    }
    if (best == shards_.size()) break;
    // Copy the whole run of this sender's transmissions at once.
    auto& sh = shards_[best];
    std::size_t c = merge_cursor_[best];
    while (c < sh.txs.size() && sh.txs[c].from == best_from) {
      out.push_back(sh.txs[c]);
      ++c;
    }
    merge_cursor_[best] = c;
  }
}

void ParallelStepEngine::fold(Simulator& sim, StepStats& stats,
                              bool drift_on) {
  // Fixed shard order.  Every accumulator is an exact integer, so the fold
  // reproduces the serial accumulation regardless of which thread ran
  // which shard; drift contributions are re-recorded through the
  // attributor so its by-cause totals and touched bookkeeping stay
  // identical to the serial engine's.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    ShardScratch& sh = shards_[s];
    sim.sum_q_ += sh.sum_q_delta;
    sim.sum_sq_ += sh.sum_sq_delta;
    stats.injected += sh.stats.injected;
    stats.sent += sh.stats.sent;
    stats.lost += sh.stats.lost;
    stats.delivered += sh.stats.delivered;
    stats.extracted += sh.stats.extracted;
    if (drift_on) {
      const auto& nodes = plan_.shards[s].nodes;
      for (const std::uint32_t local : sh.drift_touched) {
        const NodeId v = nodes[local];
        // Record every cause, zeros included: a zero-ΔP mutation (e.g. an
        // injection of 0 packets) still marks its node touched in the
        // serial engine, and the telemetry per_node list is exactly the
        // touched set.
        for (std::size_t c = 0; c < obs::kDriftCauseCount; ++c) {
          sim.drift_->record(v, static_cast<obs::DriftCause>(c),
                             sh.drift[local * obs::kDriftCauseCount + c]);
          sh.drift[local * obs::kDriftCauseCount + c] = 0;
        }
        sh.drift_touched_flag[local] = 0;
      }
      sh.drift_touched.clear();
    }
    sh.sum_q_delta = 0;
    sh.sum_sq_delta = 0;
    sh.stats = StepStats{};
    sh.active_nodes = 0;
  }
}

StepStats ParallelStepEngine::step(Simulator& sim) {
  StepStats stats;
  obs::Telemetry* const tel = sim.arm_telemetry();
  const bool drift_on = sim.drift_ != nullptr;
  if (drift_on) {
    // Size the sparse per-shard drift tables lazily: telemetry may attach
    // (or arm) after the engine is built.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::size_t need =
          plan_.shards[s].nodes.size() * obs::kDriftCauseCount;
      if (shards_[s].drift.size() < need) {
        shards_[s].drift.assign(need, 0);
        shards_[s].drift_touched_flag.assign(plan_.shards[s].nodes.size(), 0);
      }
    }
  }

  StepProfiler* const prof = sim.profiler_;
  obs::SpanTracer* const trc = sim.tracer_;
  // Lane 0 belongs to the main thread, lane s+1 to shard s; grown here,
  // outside the parallel region, so workers only ever index existing lanes.
  if (trc != nullptr) trc->ensure_lanes(shards_.size() + 1);
  const auto record_main_span = [&](StepPhase phase,
                                    StepProfiler::Clock::time_point from,
                                    StepProfiler::Clock::time_point to) {
    trc->lane(0).record({static_cast<std::uint64_t>(sim.t_),
                         trc->since_epoch(from), nanos_between(from, to),
                         obs::current_thread_index(),
                         static_cast<std::uint16_t>(phase),
                         obs::kSerialShard});
  };
  StepProfiler::Clock::time_point mark{};
  if (prof != nullptr || trc != nullptr) mark = StepProfiler::Clock::now();
  const auto lap = [&](StepPhase phase, std::uint64_t items) {
    if (prof == nullptr && trc == nullptr) return;
    const auto now = StepProfiler::Clock::now();
    if (prof != nullptr) prof->record(phase, nanos_between(mark, now), items);
    if (trc != nullptr) record_main_span(phase, mark, now);
    mark = now;
  };
  // Sharded-phase lap: wall time is the main thread's fan-out-to-join span
  // (>= the max over shards; phases never overlap, so the eight laps still
  // sum to the step wall time), CPU time is the sum of per-shard busy
  // spans measured inside the workers.
  const auto lap_parallel = [&](StepPhase phase, std::uint64_t items) {
    if (prof == nullptr && trc == nullptr) return;
    const auto now = StepProfiler::Clock::now();
    if (prof != nullptr) {
      std::uint64_t cpu = 0;
      for (const ShardScratch& sh : shards_) cpu += sh.busy_nanos;
      prof->record_parallel(phase, nanos_between(mark, now), cpu, items);
    }
    if (trc != nullptr) record_main_span(phase, mark, now);
    mark = now;
  };
  // Fans `body(shard, scratch)` out over the pool; exceptions from any
  // shard (e.g. LGG_REQUIRE failures) rethrow here, exactly like the
  // serial engine's in-line checks.  `phase` labels the per-shard spans.
  const auto run_shards = [&](StepPhase phase, const auto& body) {
    analysis::parallel_for(
        pool_, shards_.size(), [&](std::size_t s) {
          if (prof == nullptr && trc == nullptr) {
            body(s, shards_[s]);
            return;
          }
          const auto start = StepProfiler::Clock::now();
          body(s, shards_[s]);
          const auto end = StepProfiler::Clock::now();
          shards_[s].busy_nanos = nanos_between(start, end);
          if (trc != nullptr) {
            trc->lane(s + 1).record(
                {static_cast<std::uint64_t>(sim.t_), trc->since_epoch(start),
                 nanos_between(start, end), obs::current_thread_index(),
                 static_cast<std::uint16_t>(phase),
                 static_cast<std::uint16_t>(s)});
          }
        });
  };

  // 1. Topology dynamics + fault transitions — serial: both mutate the
  // shared edge mask and the fault state machine.
  const graph::EdgeMask* active_mask = sim.phase_dynamics(stats, tel);
  lap(StepPhase::kDynamics, stats.topology_changed ? 1 : 0);

  // 2. Injection — sharded over each shard's sources when order cannot be
  // observed: no admission controller (its shed decisions depend on call
  // order) and a parallel-safe, dense arrival process.  A sparse process
  // (active_sources() non-null) keeps the serial path, which is already
  // O(active sources) — fanning its short list over shards would cost
  // more than it saves.  Each source draws its own addressed stream
  // either way, so both paths inject identical counts.  The begin_step
  // hook runs serially exactly once, mirroring the serial engine.
  if (sim.observer_ != nullptr) sim.pre_injection_ = sim.queue_;
  sim.arrival_begin_step();
  const bool parallel_inject = sim.admission_ == nullptr &&
                               sim.arrival_->parallel_safe() &&
                               sim.arrival_->active_sources() == nullptr;
  if (!parallel_inject) {
    sim.phase_injection_serial(stats, tel, active_mask);
    lap(StepPhase::kInjection, static_cast<std::uint64_t>(stats.injected));
  } else {
    run_shards(StepPhase::kInjection, [&](std::size_t s, ShardScratch& sh) {
      for (const NodeId v : plan_.shards[s].sources) {
        const NodeSpec& spec = sim.net_.spec(v);
        Rng rng = sim.phase_rng(StepPhase::kInjection,
                                static_cast<std::uint64_t>(v));
        const PacketCount a = sim.arrival_->packets(v, spec.in, sim.t_, rng);
        LGG_REQUIRE(a >= 0, "arrival process returned a negative count");
        if (sim.faults_ != nullptr && sim.faults_->node_down(v)) continue;
        const PacketCount extra =
            sim.faults_ != nullptr ? sim.faults_->surge_extra(v) : 0;
        shard_apply(sim, sh, drift_on, v, a + extra,
                    obs::DriftCause::kInjection);
        sh.stats.injected += a + extra;
      }
    });
    sim.last_injection_visits_ = sim.net_.sources().size();
    std::uint64_t injected = 0;
    for (const ShardScratch& sh : shards_) {
      injected += static_cast<std::uint64_t>(sh.stats.injected);
    }
    lap_parallel(StepPhase::kInjection, injected);
  }

  // 3. Declarations — serial: O(retention nodes) with addressed draws.
  std::uint64_t declaration_work = 0;
  const std::span<const PacketCount> declared_view =
      sim.phase_declarations(declaration_work);
  lap(StepPhase::kDeclaration, declaration_work);

  const StepView view{&sim.net_,      &sim.incidence_,   active_mask,
                      sim.queue_,     declared_view,     sim.t_,
                      sim.topology_version_, sim.options_.seed};

  // 4. Selection — sharded for locally-selecting protocols (LGG): each
  // shard selects for its own nodes against the shared read-only view,
  // then the per-shard lists merge back into ascending sender order.
  // Baseline protocols (random walk etc.) draw from the phase-global
  // stream and keep the serial path.
  sim.txs_.clear();
  if (sim.protocol_->local_selection()) {
    run_shards(StepPhase::kSelection, [&](std::size_t s, ShardScratch& sh) {
      sh.txs.clear();
      sh.active_nodes = sim.protocol_->select_for_nodes(
          view, plan_.shards[s].nodes, sh.txs);
    });
    merge_transmissions(sim.txs_);
    std::uint64_t active = 0;
    for (const ShardScratch& sh : shards_) active += sh.active_nodes;
    sim.protocol_->note_selection_work(active);
    stats.proposed = static_cast<PacketCount>(sim.txs_.size());
    if (sim.options_.check_contract) {
      const std::string err = check_transmission_contract(view, sim.txs_);
      LGG_REQUIRE(err.empty(), "protocol contract violated: " + err);
    }
    lap_parallel(StepPhase::kSelection,
                 static_cast<std::uint64_t>(stats.proposed));
  } else {
    {
      Rng rng = sim.phase_rng(StepPhase::kSelection);
      sim.protocol_->select_transmissions(view, rng, sim.txs_);
    }
    stats.proposed = static_cast<PacketCount>(sim.txs_.size());
    if (sim.options_.check_contract) {
      const std::string err = check_transmission_contract(view, sim.txs_);
      LGG_REQUIRE(err.empty(), "protocol contract violated: " + err);
    }
    lap(StepPhase::kSelection, static_cast<std::uint64_t>(stats.proposed));
  }

  // 5. Interference scheduling — serial: schedulers see the global
  // proposal set by design.
  sim.keep_.assign(sim.txs_.size(), 1);
  {
    Rng rng = sim.phase_rng(StepPhase::kScheduling);
    sim.scheduler_->schedule(view, sim.txs_, rng, sim.keep_);
  }
  stats.suppressed = static_cast<PacketCount>(
      std::count(sim.keep_.begin(), sim.keep_.end(), 0));
  lap(StepPhase::kScheduling, static_cast<std::uint64_t>(stats.suppressed));

  // 6. Link-conflict resolution — serial: one pass over the kept set.
  if (sim.options_.link_conflict == LinkConflictPolicy::kDropLower) {
    stats.conflicted = static_cast<PacketCount>(resolve_link_conflicts(
        sim.txs_, sim.queue_, sim.keep_, sim.conflict_scratch_));
  }
  lap(StepPhase::kConflict, static_cast<std::uint64_t>(stats.conflicted));

  // 7. Losses + application.  Loss marking stays serial (loss models may
  // hold state); the application is the sharded boundary exchange: every
  // shard scans the full kept list — shared and read-only by now — and
  // applies exactly the mutations of its own nodes, in list order.  That
  // gives each node its serial mutation order (sends and receives
  // interleaved by global transmission index), which the value-dependent
  // drift terms and the from-queue>0 invariant both rely on.
  if (sim.options_.extraction_basis == ExtractionBasis::kSnapshot ||
      sim.observer_ != nullptr) {
    sim.snapshot_ = sim.queue_;
  }
  sim.lost_.assign(sim.txs_.size(), 0);
  {
    Rng rng = sim.phase_rng(StepPhase::kLossApply);
    sim.loss_->mark_losses(view, sim.txs_, rng, sim.lost_);
  }
  run_shards(StepPhase::kLossApply, [&](std::size_t s, ShardScratch& sh) {
    const std::uint32_t shard = static_cast<std::uint32_t>(s);
    for (std::size_t i = 0; i < sim.txs_.size(); ++i) {
      if (!sim.keep_[i]) continue;
      const Transmission& tx = sim.txs_[i];
      if (plan_.owner[static_cast<std::size_t>(tx.from)] == shard) {
        // Owner-exclusive mutation means this reads the same value the
        // serial engine would: nobody else touches tx.from's queue.
        LGG_REQUIRE(sim.queue_[static_cast<std::size_t>(tx.from)] > 0,
                    "transmission from an empty queue");
        shard_apply(sim, sh, drift_on, tx.from, -1,
                    sim.lost_[i] ? obs::DriftCause::kLoss
                                 : obs::DriftCause::kForwarding);
        ++sh.stats.sent;
        if (sim.lost_[i]) ++sh.stats.lost;
      }
      if (!sim.lost_[i] &&
          plan_.owner[static_cast<std::size_t>(tx.to)] == shard) {
        shard_apply(sim, sh, drift_on, tx.to, 1,
                    obs::DriftCause::kForwarding);
        ++sh.stats.delivered;
      }
    }
  });
  sim.record_tx_flight_events(tel);
  {
    std::uint64_t sent = 0;
    for (const ShardScratch& sh : shards_) {
      sent += static_cast<std::uint64_t>(sh.stats.sent);
    }
    lap_parallel(StepPhase::kLossApply, sent);
  }

  // 8. Extraction — sharded over each shard's sinks; every sink's draw is
  // addressed and every mutation is owner-exclusive.
  run_shards(StepPhase::kExtraction, [&](std::size_t s, ShardScratch& sh) {
    for (const NodeId v : plan_.shards[s].sinks) {
      if (sim.faults_ != nullptr &&
          (sim.faults_->node_down(v) || sim.faults_->sink_out(v))) {
        continue;
      }
      const NodeSpec& spec = sim.net_.spec(v);
      const PacketCount q = sim.queue_[static_cast<std::size_t>(v)];
      Rng rng = sim.phase_rng(StepPhase::kExtraction,
                              static_cast<std::uint64_t>(v));
      PacketCount amount = 0;
      if (sim.options_.extraction_basis == ExtractionBasis::kSnapshot) {
        amount = extraction_amount(
            spec, sim.snapshot_[static_cast<std::size_t>(v)],
            sim.options_.extraction_policy, rng);
        amount = std::min(amount, q);
      } else {
        amount = extraction_amount(spec, q, sim.options_.extraction_policy,
                                   rng);
      }
      LGG_ASSERT(amount >= 0 && amount <= q);
      shard_apply(sim, sh, drift_on, v, -amount,
                  obs::DriftCause::kExtraction);
      sh.stats.extracted += amount;
    }
  });
  {
    std::uint64_t extracted = 0;
    for (const ShardScratch& sh : shards_) {
      extracted += static_cast<std::uint64_t>(sh.stats.extracted);
    }
    lap_parallel(StepPhase::kExtraction, extracted);
  }
  if (prof != nullptr) prof->finish_step();

  fold(sim, stats, drift_on);
  sim.step_epilogue(stats, tel, declared_view);
  return stats;
}

}  // namespace lgg::core
