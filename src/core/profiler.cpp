#include "core/profiler.hpp"

#include <sstream>

#include "analysis/table.hpp"
#include "obs/json.hpp"

namespace lgg::core {

std::string_view to_string(StepPhase phase) {
  switch (phase) {
    case StepPhase::kDynamics: return "dynamics";
    case StepPhase::kInjection: return "injection";
    case StepPhase::kDeclaration: return "declaration";
    case StepPhase::kSelection: return "selection";
    case StepPhase::kScheduling: return "scheduling";
    case StepPhase::kConflict: return "conflict";
    case StepPhase::kLossApply: return "loss-apply";
    case StepPhase::kExtraction: return "extraction";
  }
  return "unknown";
}

void StepProfiler::reset() {
  phases_.fill(PhaseTotals{});
  steps_ = 0;
}

std::uint64_t StepProfiler::total_nanos() const {
  std::uint64_t total = 0;
  for (const PhaseTotals& p : phases_) total += p.nanos;
  return total;
}

std::uint64_t StepProfiler::total_cpu_nanos() const {
  std::uint64_t total = 0;
  for (const PhaseTotals& p : phases_) total += p.cpu_nanos;
  return total;
}

double StepProfiler::steps_per_second() const {
  const std::uint64_t nanos = total_nanos();
  if (steps_ == 0 || nanos == 0) return 0.0;
  return static_cast<double>(steps_) * 1e9 / static_cast<double>(nanos);
}

std::string StepProfiler::table() const {
  analysis::Table table(
      {"phase", "time ms", "share %", "ns/step", "items", "items/step"});
  const double total = static_cast<double>(total_nanos());
  const double steps = static_cast<double>(steps_ == 0 ? 1 : steps_);
  for (std::size_t i = 0; i < kStepPhaseCount; ++i) {
    const PhaseTotals& p = phases_[i];
    table.add(std::string(to_string(static_cast<StepPhase>(i))),
              static_cast<double>(p.nanos) * 1e-6,
              total == 0.0 ? 0.0
                           : 100.0 * static_cast<double>(p.nanos) / total,
              static_cast<double>(p.nanos) / steps,
              static_cast<std::int64_t>(p.items),
              static_cast<double>(p.items) / steps);
  }
  std::ostringstream os;
  os << table.to_string();
  os << "steps=" << steps_ << " profiled_ms=" << total * 1e-6
     << " steps/sec=" << steps_per_second() << "\n";
  return os.str();
}

std::string StepProfiler::json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.field("steps", steps_);
  json.field("total_nanos", total_nanos());
  json.field("steps_per_second", steps_per_second());
  json.begin_array("phases");
  for (std::size_t i = 0; i < kStepPhaseCount; ++i) {
    const PhaseTotals& p = phases_[i];
    json.begin_object();
    json.field("name", to_string(static_cast<StepPhase>(i)));
    json.field("nanos", p.nanos);
    json.field("cpu_nanos", p.cpu_nanos);
    json.field("items", p.items);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.take();
}

}  // namespace lgg::core
