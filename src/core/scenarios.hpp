// Canonical instance constructors shared by tests, benches, and examples —
// each realizes one regime of the paper's case analysis.
#pragma once

#include <cstdint>

#include "core/sd_network.hpp"

namespace lgg::core::scenarios {

/// Path of `len` nodes; node 0 is a source with rate `in`, the last node a
/// sink with rate `out`.  Feasible iff in <= 1 (unit links); unsaturated
/// never (single link saturates) unless multiplicity helps — see fat_path.
SdNetwork single_path(NodeId len, Cap in = 1, Cap out = 1);

/// Path whose consecutive nodes are joined by `multiplicity` parallel
/// links; source rate `in` at node 0, sink rate `out` at the end.
/// Unsaturated iff in < multiplicity.
SdNetwork fat_path(NodeId len, int multiplicity, Cap in, Cap out);

/// rows×cols grid; sources on the left column (rate in each), sinks on the
/// right column (rate out each).  NOTE: with in = 1 on every row this is
/// exactly *saturated* (each row has a single horizontal edge out of the
/// left column); use grid_single for an unsaturated grid.
SdNetwork grid_flow(NodeId rows, NodeId cols, Cap in = 1, Cap out = 2);

/// rows×cols grid with a single source in the middle of the left column
/// and sinks on the whole right column — unsaturated for in = 1 when
/// rows >= 2 (the source fans out over >= 3 grid edges).
SdNetwork grid_single(NodeId rows, NodeId cols, Cap in = 1, Cap out = 2);

/// Complete bipartite K_{a,b}: all left nodes sources (rate in), all right
/// nodes sinks (rate out).
SdNetwork bipartite(NodeId a, NodeId b, Cap in = 1, Cap out = 1);

/// Two k-cliques joined by one bridge; sources in the left clique, sinks in
/// the right — every S-D path crosses the bridge, so f* = 1.
/// total_in = 1 gives a saturated *internal* cut (Section V-C's regime);
/// total_in > 1 is infeasible.
SdNetwork barbell_bottleneck(NodeId k, Cap total_in = 1, Cap out = 2);

/// Random connected multigraph with `nsrc` sources / `nsink` sinks (rate 1
/// each, sinks rate `out`).  Retries seeds until the instance is feasible
/// and unsaturated.  Throws after too many retries.
SdNetwork random_unsaturated(NodeId n, EdgeId m, int nsrc, int nsink,
                             std::uint64_t seed, Cap out = 2);

/// K_{a,a} with unit source and sink rates: Σin = Σout = f*, so G* has min
/// cuts at both s* and d* — the Section V-B regime.
SdNetwork saturated_at_dstar(NodeId a);

/// `count` cliques of size k chained by single bridges; source (rate 1) in
/// the first clique, sink in the last.  Every bridge is a saturated
/// internal min cut, so the Section V-C induction must recurse
/// count − 1 times.  Requires k >= 2, count >= 2.
SdNetwork clique_chain(NodeId k, int count, Cap out = 2);

/// Scales every source rate by `factor` (rounding up), producing an
/// overloaded (infeasible) variant when factor · rate exceeds f*.
SdNetwork scale_arrivals(const SdNetwork& net, double factor);

/// Converts every source/sink of `net` into an R-generalized node with the
/// given retention (rates preserved) — the Definition 7/8 variant.
SdNetwork generalize(const SdNetwork& net, Cap retention);

}  // namespace lgg::core::scenarios
