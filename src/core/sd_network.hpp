// The S-D-network of Section II, generalized per Definitions 5–8.
//
// Every node carries a NodeSpec {in, out, retention}:
//   * classical source       — in > 0, out = 0, retention = 0
//   * classical destination  — in = 0, out > 0, retention = 0
//   * R-generalized node     — any in/out >= 0 with retention R >= 0
//     (a destination if in <= out, otherwise a source, per Definition 7)
//   * plain relay            — in = out = retention = 0
//
// A classical S-D-network is exactly the retention-0 special case, which the
// paper proves (and the test suite checks) behaves identically.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "flow/feasibility.hpp"
#include "graph/multigraph.hpp"

namespace lgg::core {

struct NodeSpec {
  Cap in = 0;         ///< max packets injected per step, in(v)
  Cap out = 0;        ///< max packets extracted per step, out(v)
  Cap retention = 0;  ///< R of Definition 7 (0 = classical behaviour)

  friend bool operator==(const NodeSpec&, const NodeSpec&) = default;
};

class SdNetwork {
 public:
  /// Empty network; only useful as a placeholder to assign into.
  SdNetwork() = default;

  explicit SdNetwork(graph::Multigraph g)
      : graph_(std::move(g)),
        specs_(static_cast<std::size_t>(graph_.node_count())) {}

  /// Declares a classical source injecting exactly/at most in(s) per step.
  void set_source(NodeId v, Cap in_rate);
  /// Declares a classical destination extracting min{out(d), q} per step.
  void set_sink(NodeId v, Cap out_rate);
  /// Declares an R-generalized node (Definition 7).
  void set_generalized(NodeId v, Cap in_rate, Cap out_rate, Cap retention);
  /// Clears a node back to a plain relay.
  void clear_role(NodeId v);
  /// Replaces a node's spec wholesale (live churn: capacity nudges,
  /// node_leave parking a spec, node_join restoring it).  All-zero specs
  /// are allowed and equivalent to clear_role.
  void set_spec(NodeId v, NodeSpec spec);

  [[nodiscard]] const graph::Multigraph& topology() const { return graph_; }
  [[nodiscard]] NodeId node_count() const { return graph_.node_count(); }
  [[nodiscard]] int max_degree() const { return graph_.max_degree(); }

  [[nodiscard]] const NodeSpec& spec(NodeId v) const {
    LGG_REQUIRE(graph_.valid_node(v), "spec: bad node");
    return specs_[static_cast<std::size_t>(v)];
  }

  // The role indices below are maintained eagerly on every role mutation
  // (set_source/set_sink/set_generalized/clear_role/set_spec), so the
  // simulator's per-step injection and extraction loops touch only the
  // relevant nodes instead of scanning all n.  Edge-mask dynamics never
  // change roles, but scheduled churn (core/faults.hpp node_join/
  // node_leave/nudge) mutates specs mid-run through set_spec — callers
  // holding references to these lists must re-read them after any step
  // whose TopologyDelta is non-empty (the shard engine does exactly that
  // via ParallelStepEngine::refresh_roles).

  /// Nodes with in > 0 (injection side of S ∪ D), ascending.
  [[nodiscard]] const std::vector<NodeId>& sources() const {
    return source_ids_;
  }
  /// Nodes with out > 0 (extraction side of S ∪ D), ascending.
  [[nodiscard]] const std::vector<NodeId>& sinks() const {
    return sink_ids_;
  }
  /// Nodes with retention > 0 (the only ones whose declaration can lie).
  [[nodiscard]] const std::vector<NodeId>& retention_nodes() const {
    return retention_ids_;
  }
  /// S ∪ D: nodes with in > 0, out > 0, or retention > 0.
  [[nodiscard]] std::vector<NodeId> special_nodes() const;

  /// Σ_s in(s) — the arrival rate of Section II.
  [[nodiscard]] Cap arrival_rate() const;
  /// Σ_d out(d).
  [[nodiscard]] Cap extraction_rate() const;
  /// max over S ∪ D of out(v) (outmax of Properties 3–6).
  [[nodiscard]] Cap max_out() const;
  /// max retention over all nodes.
  [[nodiscard]] Cap max_retention() const;
  /// True if any node deviates from classical source/sink behaviour.
  [[nodiscard]] bool is_generalized() const;

  /// {node, in(v)} for every node with in > 0, in node order — the (s*, v)
  /// arcs of G*.
  [[nodiscard]] std::vector<flow::RatedNode> source_rates() const;
  /// {node, out(v)} for every node with out > 0 — the (v, d*) arcs of G*.
  [[nodiscard]] std::vector<flow::RatedNode> sink_rates() const;

  /// Throws ContractViolation unless the instance has at least one source
  /// and one sink and all rates are sane.
  void validate() const;

 private:
  void update_role_index(NodeId v);

  graph::Multigraph graph_;
  std::vector<NodeSpec> specs_;
  std::vector<NodeId> source_ids_;     // in > 0, ascending
  std::vector<NodeId> sink_ids_;       // out > 0, ascending
  std::vector<NodeId> retention_ids_;  // retention > 0, ascending
};

/// Full Section-II/V analysis of the instance (feasibility, f*, ε, min-cut
/// placement) via the extended graph G*.
flow::FeasibilityReport analyze(const SdNetwork& net);

/// One-line human summary ("n=12 Δ=4 |S|=2 |D|=3 rate=5 feasible unsaturated
/// eps=0.25 ...") for logs and bench output.
std::string describe(const SdNetwork& net,
                     const flow::FeasibilityReport& report);

}  // namespace lgg::core
