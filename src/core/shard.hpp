// The static node-ownership plan behind the shard engine.
//
// A ShardPlan fixes, for one network and one shard count K, which shard
// owns each node and the role-filtered node lists each shard iterates
// (its nodes, sources, sinks — all ascending, preserving the serial
// engine's per-phase visit order within a shard).  Ownership is exclusive:
// only the owner shard ever mutates a node's queue, which is what lets
// the apply phase run shard-parallel without locks — a shard scans the
// full transmission list in order and applies exactly the mutations of
// its own nodes, so each node sees its mutations in precisely the serial
// order.
//
// The plan derives deterministically from (base graph, K) via the BFS
// edge-cut partitioner (graph/partition.hpp).  It holds no trajectory
// state: rebuilding it (enable_sharding after a checkpoint restore, or
// with a different K) never perturbs the run.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sd_network.hpp"

namespace lgg::core {

struct ShardPlan {
  struct Shard {
    std::vector<NodeId> nodes;    ///< owned nodes, ascending
    std::vector<NodeId> sources;  ///< owned nodes with in > 0, ascending
    std::vector<NodeId> sinks;    ///< owned nodes with out > 0, ascending
  };

  std::uint32_t shard_count = 0;
  std::vector<std::uint32_t> owner;        ///< node -> owning shard
  std::vector<std::uint32_t> local_index;  ///< node -> index in owner's nodes
  std::vector<Shard> shards;
  /// Edges whose endpoints live in different shards — each one is a
  /// potential cross-shard transmission the apply phase exchanges.
  std::size_t boundary_edges = 0;
};

/// Builds the plan for `net` with `shard_count` shards (>= 1).  Shard node
/// counts differ by at most one; shards may be empty when shard_count
/// exceeds the node count.
ShardPlan build_shard_plan(const SdNetwork& net, std::uint32_t shard_count);

/// Rebuilds the per-shard role lists (sources/sinks) from the network's
/// current role indices, keeping ownership and node lists untouched.  Churn
/// mutates specs — never the node set — so after any churn step this is all
/// the plan needs to stay exact; ownership derives from the base graph
/// alone.  O(sources + sinks).
void repair_shard_plan_roles(ShardPlan& plan, const SdNetwork& net);

}  // namespace lgg::core
