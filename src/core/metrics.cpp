#include "core/metrics.hpp"

#include <algorithm>

namespace lgg::core {

void MetricsRecorder::observe(TimeStep, std::span<const PacketCount> queues,
                              const StepStats& stats) {
  double state = 0.0;
  double total = 0.0;
  double max_q = 0.0;
  for (const PacketCount q : queues) {
    const auto qd = static_cast<double>(q);
    state += qd * qd;
    total += qd;
    max_q = std::max(max_q, qd);
  }
  network_state_.push_back(state);
  total_packets_.push_back(total);
  max_queue_.push_back(max_q);
  steps_.push_back(stats);
  if (record_queues_) {
    queue_traces_.emplace_back(queues.begin(), queues.end());
  }
}

}  // namespace lgg::core
