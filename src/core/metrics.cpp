#include "core/metrics.hpp"

#include <algorithm>

namespace lgg::core {

void MetricsRecorder::observe(TimeStep t, std::span<const PacketCount> queues,
                              const StepStats& stats) {
  double state = 0.0;
  PacketCount total = 0;
  for (const PacketCount q : queues) {
    const auto qd = static_cast<double>(q);
    state += qd * qd;
    total += q;
  }
  observe(t, queues, stats, total, state);
}

void MetricsRecorder::observe(TimeStep, std::span<const PacketCount> queues,
                              const StepStats& stats,
                              PacketCount total_packets,
                              double network_state) {
  PacketCount max_q = 0;
  for (const PacketCount q : queues) max_q = std::max(max_q, q);
  network_state_.push_back(network_state);
  total_packets_.push_back(static_cast<double>(total_packets));
  max_queue_.push_back(static_cast<double>(max_q));
  steps_.push_back(stats);
  if (record_queues_) {
    queue_traces_.emplace_back(queues.begin(), queues.end());
  }
}

}  // namespace lgg::core
