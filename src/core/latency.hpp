// Per-packet latency measurement.
//
// The paper's model tracks queue *lengths* only; for engineering
// evaluation (E14) we additionally measure packet sojourn times by
// replaying the step records under a FIFO service discipline: queues hold
// birth timestamps, transmissions move the oldest packet of the sender,
// extraction retires the oldest packets of the sink.  Implemented as a
// StepObserver so the simulator core stays count-based.
#pragma once

#include <deque>
#include <vector>

#include "core/simulator.hpp"

namespace lgg::core {

struct LatencyStats {
  std::int64_t delivered = 0;  ///< packets extracted at sinks
  std::int64_t lost = 0;       ///< packets destroyed in flight
  double mean = 0.0;           ///< mean sojourn (steps, injection->extraction)
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

class LatencyTracker final : public StepObserver {
 public:
  LatencyTracker() = default;

  void on_step(const StepRecord& record) override;

  /// Sojourn statistics over all packets extracted so far.
  [[nodiscard]] LatencyStats stats() const;

  /// Raw sojourn samples (steps in network per extracted packet).
  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }

 private:
  bool initialized_ = false;
  std::vector<std::deque<TimeStep>> birth_;  // FIFO of birth stamps per node
  std::vector<double> samples_;
  std::int64_t lost_ = 0;
};

/// Fans one simulator observer slot out to several observers.
class CompositeObserver final : public StepObserver {
 public:
  void add(StepObserver* observer) {
    LGG_REQUIRE(observer != nullptr, "CompositeObserver: null observer");
    observers_.push_back(observer);
  }
  void on_step(const StepRecord& record) override {
    for (StepObserver* o : observers_) o->on_step(record);
  }

 private:
  std::vector<StepObserver*> observers_;
};

}  // namespace lgg::core
