// Packet arrival processes.
//
// The paper's base model injects exactly in(s) packets per step at every
// source; pseudo-sources (Def. 5) inject *at most* in(s); the conjectures
// consider time-varying (Conj. 2) and uniformly random (Conj. 3) arrivals.
// Each process maps (node, in-rate, step) to an injection count.
//
// Processes with cross-step or cross-node state hook the per-step
// `begin_step` callback (called exactly once per step, serially, by both
// the serial and the shard engine before any packets() call) and may
// publish a sparse `active_sources` set so the injection phase only visits
// the sources that can inject this step — the mechanism behind O(active)
// injection on million-source topologies (src/traffic/adversary.hpp).
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace lgg::obs {
class MetricRegistry;
}  // namespace lgg::obs

namespace lgg::core {

class SdNetwork;

/// Everything an arrival process may inspect at the top of a step.  Spans
/// alias simulator state and are only valid during the begin_step call.
struct ArrivalContext {
  TimeStep t = 0;
  const SdNetwork* net = nullptr;
  /// The network's source list (in > 0), ascending node order.
  std::span<const NodeId> sources;
  /// Live pre-injection queue snapshot, indexed by node — the hook the
  /// queue-aware adversary strategy reads to aim in-envelope bursts.
  std::span<const PacketCount> queues;
  /// The injection phase's *global* addressed stream (draw_key with
  /// kGlobalDraw): per-source packets() draws use per-node streams, so a
  /// begin_step draw can never shift any source's own stream.
  Rng* rng = nullptr;
};

/// Exact fixed-point token arithmetic shared by the envelope-bounded
/// processes (LeakyBucketArrival here, AdversarialArrival in src/traffic).
/// Working in integer token units of 2^-20 packets makes the (ρ,σ)
/// admissibility argument exact: rate_units = ⌊ρ·in·2^20⌋ ≤ ρ·in·2^20 and
/// cap_units = ⌊σ·2^20⌋ ≤ σ·2^20, so the telescoped window sum
/// Σa·2^20 ≤ cap_units + rate_units·w never exceeds (σ + ρ·in·w)·2^20 —
/// no floating-point ulp can leak packets past the envelope.
namespace envelope {

inline constexpr std::int64_t kTokenScale = std::int64_t{1} << 20;

/// ⌊value·2^20⌋ for non-negative finite values, saturating far below
/// int64 overflow so bucket arithmetic (cap + rate·elapsed) stays exact.
[[nodiscard]] std::int64_t to_units(double value);

}  // namespace envelope

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Packets injected at node v at step t.  `in_rate` is the node's in(v).
  virtual PacketCount packets(NodeId v, Cap in_rate, TimeStep t,
                              Rng& rng) = 0;

  /// Called exactly once per step, serially, before any packets() call of
  /// that step — by the serial and the shard engine alike, so stateful
  /// processes stay bitwise engine-independent.  Default: nothing.
  virtual void begin_step(const ArrivalContext&) {}

  /// Sparse injection: a non-null return is the sorted, duplicate-free set
  /// of sources that may inject a nonzero count this step (a superset is
  /// legal), valid until the next begin_step.  The injection phase then
  /// visits only these nodes (plus fault-surging sources) instead of every
  /// source.  Default: nullptr — dense, every source is visited.
  [[nodiscard]] virtual const std::vector<NodeId>* active_sources() const {
    return nullptr;
  }

  /// True when packets() may be called concurrently for distinct nodes —
  /// either a pure function of (v, in_rate, t, rng), or mutable state that
  /// is strictly per-node (disjoint slots presized in begin_step).  The
  /// shard engine only parallelizes the injection phase when this holds;
  /// other processes run it serially, with identical results.  Defaults to
  /// false so a new process is safe until it opts in.
  [[nodiscard]] virtual bool parallel_safe() const { return false; }

  /// Telemetry hook, mirroring the other pluggable components: called when
  /// a telemetry session attaches (or when the process is installed into a
  /// session-carrying simulator).  Default: no metrics.
  virtual void register_metrics(obs::MetricRegistry&) {}

  /// Checkpoint hooks (core/checkpoint.hpp): serialize/restore cross-step
  /// internal state (e.g. TokenBucketArrival's token balances).  Default:
  /// stateless — most processes are pure functions of (v, in_rate, t, rng).
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}
};

/// Exactly in(v) packets each step — the Section V-B premise.
class ExactArrival final : public ArrivalProcess {
 public:
  [[nodiscard]] std::string_view name() const override { return "exact"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng&) override {
    return in_rate;
  }
};

/// Deterministic long-run rate factor·in(v) via an error-accumulating
/// (Bresenham) counter: injections are ⌊(t+1)·f·in⌋ − ⌊t·f·in⌋.
/// factor <= 1 models a compliant sub-maximal source; factor > 1 models the
/// overload experiments (Theorem 1's divergence direction).
class ScaledArrival final : public ArrivalProcess {
 public:
  explicit ScaledArrival(double factor);
  [[nodiscard]] std::string_view name() const override { return "scaled"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

 private:
  double factor_;
};

/// Binomial(in(v), p): each of the in(v) potential packets arrives
/// independently — a stochastic pseudo-source.
class BernoulliArrival final : public ArrivalProcess {
 public:
  explicit BernoulliArrival(double p);
  [[nodiscard]] std::string_view name() const override { return "bernoulli"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double p_;
};

/// Uniform integer in [0, 2·mean_factor·in(v)] — mean = mean_factor·in(v).
/// Conjecture 3's uniform-distribution arrivals.
class UniformArrival final : public ArrivalProcess {
 public:
  explicit UniformArrival(double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "uniform"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double mean_factor_;
};

/// Poisson(mean_factor·in(v)) arrivals — the classical queueing-theory
/// stochastic source; used to probe whether Conjecture 3's threshold is
/// distribution-specific (it is not, empirically).
class PoissonArrival final : public ArrivalProcess {
 public:
  explicit PoissonArrival(double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "poisson"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double mean_factor_;
};

/// Geometric arrivals with mean mean_factor·in(v): P(k) = (1−p) p^k —
/// heavier-tailed than uniform; same stability threshold, larger plateaus.
class GeometricArrival final : public ArrivalProcess {
 public:
  explicit GeometricArrival(double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "geometric"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double mean_factor_;
};

/// Pareto (Lomax) heavy-tail arrivals with mean mean_factor·in(v) and tail
/// index alpha > 1: P(X > x) = (1 + x/scale)^-alpha.  The smaller alpha,
/// the fatter the tail — rare enormous batches on top of a compliant mean,
/// the "millions of users, one flash crowd" shape the stability frontier
/// is probed against.  Draws are clamped at 10^9 packets per (node, step)
/// so a single tail event cannot overflow the potential accumulators.
class ParetoArrival final : public ArrivalProcess {
 public:
  ParetoArrival(double alpha, double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "pareto"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double alpha_;
  double mean_factor_;
};

/// Deterministic diurnal rate modulation: the instantaneous rate is
/// mean_factor·in(v)·(1 + amp·sin(2πt/period)) — a day/night load curve.
/// Injections are the floor-difference of the closed-form cumulative
/// C(t) = mean·in·(t − amp·(period/2π)·(cos(2πt/period) − 1)), so the
/// process is stateless, exact over any horizon, and parallel-safe.
class DiurnalArrival final : public ArrivalProcess {
 public:
  /// mean_factor >= 0, amp in [0, 1] (rate never negative), period >= 1.
  DiurnalArrival(double mean_factor, double amp, TimeStep period);
  [[nodiscard]] std::string_view name() const override { return "diurnal"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep t, Rng&) override;

 private:
  [[nodiscard]] double cumulative(Cap in_rate, TimeStep t) const;
  double mean_factor_;
  double amp_;
  TimeStep period_;
};

/// Conjecture 2's burst pattern: `burst_len` steps at high·in(v) followed
/// by (period − burst_len) steps at low·in(v), repeating.
class BurstArrival final : public ArrivalProcess {
 public:
  BurstArrival(double high_factor, double low_factor, TimeStep burst_len,
               TimeStep period);
  [[nodiscard]] std::string_view name() const override { return "burst"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

  [[nodiscard]] double average_factor() const;

 private:
  double high_;
  double low_;
  TimeStep burst_len_;
  TimeStep period_;
};

/// (ρ,σ) leaky bucket, the *smooth* admissible shape: every step each
/// source emits as many whole packets as its token bucket affords, with
/// refill ⌊ρ·in·2^20⌋ units per step capped at ⌊σ·2^20⌋ units, bucket
/// initially full (the σ burst fires up front, then the flow settles to
/// rate ρ·in).  Exact integer arithmetic (envelope::kTokenScale) makes the
/// admissibility bound A(s,t] ≤ ρ·in·(t−s) + σ provable without FP slack.
class LeakyBucketArrival final : public ArrivalProcess {
 public:
  /// rho >= 0, sigma >= 0, both finite.
  LeakyBucketArrival(double rho, double sigma);
  [[nodiscard]] std::string_view name() const override {
    return "leaky_bucket";
  }
  /// Per-node bucket slots are disjoint and presized in begin_step.
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void begin_step(const ArrivalContext& ctx) override;
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

  [[nodiscard]] double rho() const { return rho_; }
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double rho_;
  double sigma_;
  /// Token units per node; kUnborrowed marks "never touched" = full bucket.
  std::vector<std::int64_t> bucket_;
};

/// Adversarial-queueing-style (r, b) token-bucket source (the setting of
/// the paper's reference [4]): over any interval of length w the adversary
/// may inject at most r·in(v)·w + b packets.  This implementation is the
/// worst bursty pattern inside that envelope — it hoards tokens for
/// `hoard_period` steps, then dumps the whole accumulated allowance at
/// once.  r < 1 keeps the long-run rate strictly feasible regardless of b.
class TokenBucketArrival final : public ArrivalProcess {
 public:
  /// r >= 0 (rate fraction of in(v)), burst cap b >= 0, hoard_period >= 1.
  TokenBucketArrival(double r, double burst_cap, TimeStep hoard_period);
  [[nodiscard]] std::string_view name() const override {
    return "token_bucket";
  }
  /// Token balances live in a flat per-node-index vector presized in
  /// begin_step, so concurrent packets() calls for distinct nodes touch
  /// disjoint slots.
  [[nodiscard]] bool parallel_safe() const override { return true; }
  void begin_step(const ArrivalContext& ctx) override;
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

  // The token balances persist across steps, so they checkpoint.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double r_;
  double burst_cap_;
  TimeStep hoard_period_;
  std::vector<double> tokens_;  // flat, indexed by NodeId; absent = 0
};

/// Replays a fixed per-node schedule; steps beyond the trace inject 0.
/// Used by the Conjecture-1 domination experiments, where one trajectory's
/// arrivals must pointwise dominate another's.
class TraceArrival final : public ArrivalProcess {
 public:
  explicit TraceArrival(std::map<NodeId, std::vector<PacketCount>> trace);
  [[nodiscard]] std::string_view name() const override { return "trace"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId v, Cap, TimeStep t, Rng&) override;

 private:
  std::map<NodeId, std::vector<PacketCount>> trace_;
};

}  // namespace lgg::core
