// Packet arrival processes.
//
// The paper's base model injects exactly in(s) packets per step at every
// source; pseudo-sources (Def. 5) inject *at most* in(s); the conjectures
// consider time-varying (Conj. 2) and uniformly random (Conj. 3) arrivals.
// Each process maps (node, in-rate, step) to an injection count.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace lgg::core {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Packets injected at node v at step t.  `in_rate` is the node's in(v).
  virtual PacketCount packets(NodeId v, Cap in_rate, TimeStep t,
                              Rng& rng) = 0;

  /// True when packets() may be called concurrently for distinct nodes —
  /// i.e. it is a pure function of (v, in_rate, t, rng) with no mutable
  /// cross-call state.  The shard engine only parallelizes the injection
  /// phase when this holds; stateful processes (token buckets) run it
  /// serially, with identical results.  Defaults to false so a new process
  /// is safe until it opts in.
  [[nodiscard]] virtual bool parallel_safe() const { return false; }

  /// Checkpoint hooks (core/checkpoint.hpp): serialize/restore cross-step
  /// internal state (e.g. TokenBucketArrival's token balances).  Default:
  /// stateless — most processes are pure functions of (v, in_rate, t, rng).
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}
};

/// Exactly in(v) packets each step — the Section V-B premise.
class ExactArrival final : public ArrivalProcess {
 public:
  [[nodiscard]] std::string_view name() const override { return "exact"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng&) override {
    return in_rate;
  }
};

/// Deterministic long-run rate factor·in(v) via an error-accumulating
/// (Bresenham) counter: injections are ⌊(t+1)·f·in⌋ − ⌊t·f·in⌋.
/// factor <= 1 models a compliant sub-maximal source; factor > 1 models the
/// overload experiments (Theorem 1's divergence direction).
class ScaledArrival final : public ArrivalProcess {
 public:
  explicit ScaledArrival(double factor);
  [[nodiscard]] std::string_view name() const override { return "scaled"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

 private:
  double factor_;
};

/// Binomial(in(v), p): each of the in(v) potential packets arrives
/// independently — a stochastic pseudo-source.
class BernoulliArrival final : public ArrivalProcess {
 public:
  explicit BernoulliArrival(double p);
  [[nodiscard]] std::string_view name() const override { return "bernoulli"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double p_;
};

/// Uniform integer in [0, 2·mean_factor·in(v)] — mean = mean_factor·in(v).
/// Conjecture 3's uniform-distribution arrivals.
class UniformArrival final : public ArrivalProcess {
 public:
  explicit UniformArrival(double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "uniform"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double mean_factor_;
};

/// Poisson(mean_factor·in(v)) arrivals — the classical queueing-theory
/// stochastic source; used to probe whether Conjecture 3's threshold is
/// distribution-specific (it is not, empirically).
class PoissonArrival final : public ArrivalProcess {
 public:
  explicit PoissonArrival(double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "poisson"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double mean_factor_;
};

/// Geometric arrivals with mean mean_factor·in(v): P(k) = (1−p) p^k —
/// heavier-tailed than uniform; same stability threshold, larger plateaus.
class GeometricArrival final : public ArrivalProcess {
 public:
  explicit GeometricArrival(double mean_factor);
  [[nodiscard]] std::string_view name() const override { return "geometric"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId, Cap in_rate, TimeStep, Rng& rng) override;

 private:
  double mean_factor_;
};

/// Conjecture 2's burst pattern: `burst_len` steps at high·in(v) followed
/// by (period − burst_len) steps at low·in(v), repeating.
class BurstArrival final : public ArrivalProcess {
 public:
  BurstArrival(double high_factor, double low_factor, TimeStep burst_len,
               TimeStep period);
  [[nodiscard]] std::string_view name() const override { return "burst"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

  [[nodiscard]] double average_factor() const;

 private:
  double high_;
  double low_;
  TimeStep burst_len_;
  TimeStep period_;
};

/// Adversarial-queueing-style (r, b) token-bucket source (the setting of
/// the paper's reference [4]): over any interval of length w the adversary
/// may inject at most r·in(v)·w + b packets.  This implementation is the
/// worst bursty pattern inside that envelope — it hoards tokens for
/// `hoard_period` steps, then dumps the whole accumulated allowance at
/// once.  r < 1 keeps the long-run rate strictly feasible regardless of b.
class TokenBucketArrival final : public ArrivalProcess {
 public:
  /// r >= 0 (rate fraction of in(v)), burst cap b >= 0, hoard_period >= 1.
  TokenBucketArrival(double r, double burst_cap, TimeStep hoard_period);
  [[nodiscard]] std::string_view name() const override {
    return "token_bucket";
  }
  PacketCount packets(NodeId v, Cap in_rate, TimeStep t, Rng&) override;

  // The token balances persist across steps, so they checkpoint.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  double r_;
  double burst_cap_;
  TimeStep hoard_period_;
  std::map<NodeId, double> tokens_;
};

/// Replays a fixed per-node schedule; steps beyond the trace inject 0.
/// Used by the Conjecture-1 domination experiments, where one trajectory's
/// arrivals must pointwise dominate another's.
class TraceArrival final : public ArrivalProcess {
 public:
  explicit TraceArrival(std::map<NodeId, std::vector<PacketCount>> trace);
  [[nodiscard]] std::string_view name() const override { return "trace"; }
  [[nodiscard]] bool parallel_safe() const override { return true; }
  PacketCount packets(NodeId v, Cap, TimeStep t, Rng&) override;

 private:
  std::map<NodeId, std::vector<PacketCount>> trace_;
};

}  // namespace lgg::core
