#include "core/lyapunov.hpp"

#include <algorithm>
#include <cmath>

namespace lgg::core {

namespace {

double potential(std::span<const PacketCount> q) {
  double p = 0;
  for (const PacketCount x : q) {
    p += static_cast<double>(x) * static_cast<double>(x);
  }
  return p;
}

}  // namespace

LyapunovAuditor::LyapunovAuditor(const SdNetwork& net)
    : plan_(build_flow_plan(net)) {}

void LyapunovAuditor::on_step(const StepRecord& record) {
  const auto n = static_cast<std::size_t>(record.net->node_count());
  LyapunovStepAudit audit;
  audit.t = record.t;
  audit.p_before = potential(record.before_injection);
  audit.p_after = potential(record.after_step);

  // Eq. 1: P_{t+1} − P_t = Σ (Δq)² + 2 Σ q_t Δq, exactly.
  for (std::size_t v = 0; v < n; ++v) {
    const auto dq = static_cast<double>(record.after_step[v] -
                                        record.before_injection[v]);
    audit.sum_dq_squared += dq * dq;
    audit.delta += static_cast<double>(record.before_injection[v]) * dq;
  }
  audit.identity_ok =
      std::abs((audit.p_after - audit.p_before) -
               (audit.sum_dq_squared + 2.0 * audit.delta)) < 0.5;

  // Eq. 3 ledger: reconstruct per-node extraction from the step balance
  // and check every term is legal.
  std::vector<PacketCount> fired_out(n, 0);
  std::vector<PacketCount> delivered_in(n, 0);
  bool gradient_ok = true;
  for (std::size_t i = 0; i < record.transmissions.size(); ++i) {
    if (!record.kept[i]) continue;
    const Transmission& tx = record.transmissions[i];
    ++fired_out[static_cast<std::size_t>(tx.from)];
    if (!record.lost[i]) ++delivered_in[static_cast<std::size_t>(tx.to)];
    // LGG fires strictly downhill w.r.t. the declared queues.
    if (record.at_selection[static_cast<std::size_t>(tx.from)] <=
        record.declared[static_cast<std::size_t>(tx.to)]) {
      gradient_ok = false;
    }
  }
  audit.gradient_ok = gradient_ok;

  bool ledger_ok = true;
  PacketCount extracted_total = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const PacketCount ext = record.at_selection[v] - fired_out[v] +
                            delivered_in[v] - record.after_step[v];
    const NodeSpec& spec = record.net->spec(static_cast<NodeId>(v));
    if (ext < 0 || ext > spec.out) ledger_ok = false;
    extracted_total += ext;
  }
  if (extracted_total != record.stats.extracted) ledger_ok = false;
  audit.ledger_ok = ledger_ok;

  // Eq. 4 telescope over the fixed comparator plan Φ.
  for (const auto& path : plan_.paths) {
    for (const Transmission& hop : path) {
      audit.telescope_lhs += static_cast<double>(
          record.at_selection[static_cast<std::size_t>(hop.to)] -
          record.at_selection[static_cast<std::size_t>(hop.from)]);
    }
    if (!path.empty()) {
      audit.telescope_rhs += static_cast<double>(
          record.at_selection[static_cast<std::size_t>(path.back().to)] -
          record.at_selection[static_cast<std::size_t>(path.front().from)]);
    }
  }
  audit.telescope_ok =
      std::abs(audit.telescope_lhs - audit.telescope_rhs) < 0.5;

  audits_.push_back(audit);
}

bool LyapunovAuditor::all_ok() const {
  return std::all_of(audits_.begin(), audits_.end(),
                     [](const LyapunovStepAudit& a) {
                       return a.identity_ok && a.ledger_ok &&
                              a.gradient_ok && a.telescope_ok;
                     });
}

double LyapunovAuditor::max_delta() const {
  double best = 0.0;
  for (const auto& a : audits_) best = std::max(best, a.delta);
  return best;
}

}  // namespace lgg::core
