#include "core/checkpoint.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string_view>

#include "common/binio.hpp"
#include "common/failpoint.hpp"
#include "core/parallel_step.hpp"
#include "core/simulator.hpp"

namespace lgg::core {

namespace {

/// Payload field order; restore validates each label so a truncated or
/// reordered payload fails with a named field instead of garbage state.
constexpr std::array<std::string_view, 6> kComponentLabels = {
    "protocol", "arrival", "loss", "scheduler", "dynamics", "faults"};

constexpr std::uint64_t kMaxPayload = std::uint64_t{1} << 36;  // 64 GiB

std::string capture(const std::function<void(std::ostream&)>& write) {
  std::ostringstream os(std::ios::binary);
  write(os);
  return os.str();
}

[[noreturn]] void fail(const std::string& what) {
  throw CheckpointError("checkpoint: " + what);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

void Simulator::save_checkpoint(std::ostream& os) const {
  std::ostringstream payload_os(std::ios::binary);

  binio::write_i64(payload_os, t_);
  binio::write_u64(payload_os, topology_version_);
  binio::write_i64(payload_os, initial_total_);
  binio::write_i64(payload_os, sum_q_);
  // Σq² is a 128-bit accumulator; split via two 32-bit shifts so the
  // 64-bit fallback build stays well defined.
  binio::write_u64(payload_os, static_cast<std::uint64_t>(sum_sq_));
  binio::write_u64(payload_os,
                   static_cast<std::uint64_t>((sum_sq_ >> 32) >> 32));

  binio::write_u32(payload_os, static_cast<std::uint32_t>(queue_.size()));
  for (const PacketCount q : queue_) binio::write_i64(payload_os, q);

  binio::write_u32(payload_os, static_cast<std::uint32_t>(mask_.size()));
  for (EdgeId e = 0; e < mask_.size(); ++e) {
    binio::write_u8(payload_os, mask_.active(e) ? 1 : 0);
  }

  // v5: live node specs.  Churn mutates rates mid-run, so the checkpoint
  // carries the current specs rather than trusting the network file.
  binio::write_u32(payload_os, static_cast<std::uint32_t>(net_.node_count()));
  for (NodeId v = 0; v < net_.node_count(); ++v) {
    const NodeSpec& spec = net_.spec(v);
    binio::write_i64(payload_os, spec.in);
    binio::write_i64(payload_os, spec.out);
    binio::write_i64(payload_os, spec.retention);
  }

  binio::write_i64(payload_os, totals_.injected);
  binio::write_i64(payload_os, totals_.proposed);
  binio::write_i64(payload_os, totals_.suppressed);
  binio::write_i64(payload_os, totals_.conflicted);
  binio::write_i64(payload_os, totals_.sent);
  binio::write_i64(payload_os, totals_.lost);
  binio::write_i64(payload_os, totals_.delivered);
  binio::write_i64(payload_os, totals_.extracted);
  binio::write_i64(payload_os, totals_.crash_wiped);
  binio::write_i64(payload_os, totals_.shed);
  binio::write_i64(payload_os, totals_.steps);

  // v4: the master seed pins every remaining draw (draws are addressed by
  // (seed, step, phase, node), never sequenced), so the RNG section is the
  // seed itself.
  binio::write_u64(payload_os, options_.seed);

  const auto component = [&](std::string_view label,
                             const std::string& blob) {
    binio::write_string(payload_os, std::string(label));
    binio::write_string(payload_os, blob);
  };
  component("protocol", capture([&](std::ostream& s) {
              protocol_->save_state(s);
            }));
  component("arrival", capture([&](std::ostream& s) {
              arrival_->save_state(s);
            }));
  component("loss", capture([&](std::ostream& s) { loss_->save_state(s); }));
  component("scheduler", capture([&](std::ostream& s) {
              scheduler_->save_state(s);
            }));
  component("dynamics", capture([&](std::ostream& s) {
              dynamics_->save_state(s);
            }));
  component("faults", faults_ != nullptr
                          ? capture([&](std::ostream& s) {
                              faults_->save_state(s);
                            })
                          : std::string());
  binio::write_u8(payload_os, faults_ != nullptr ? 1 : 0);

  // v2: optional trailing telemetry section.  Saving it lets a resumed run
  // continue the JSONL stream (sequence numbers, counters, cumulative
  // drift, flight ring) byte-identically.
  binio::write_u8(payload_os, telemetry_ != nullptr ? 1 : 0);
  if (telemetry_ != nullptr) {
    binio::write_string(payload_os, capture([&](std::ostream& s) {
                          telemetry_->save_state(s);
                        }));
  }

  // v3: trailing admission-controller section.  Unlike telemetry this is
  // strict in both directions — admission gating steers the trajectory, so
  // a presence mismatch cannot resume bitwise-identically.
  binio::write_u8(payload_os, admission_ != nullptr ? 1 : 0);
  if (admission_ != nullptr) {
    binio::write_string(payload_os, capture([&](std::ostream& s) {
                          admission_->save_state(s);
                        }));
  }

  const std::string payload = payload_os.str();
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  binio::write_u32(os, kCheckpointVersion);
  binio::write_u64(os, payload.size());
  binio::write_u32(os, crc32(payload.data(), payload.size()));
  binio::write_bytes(os, payload.data(), payload.size());
  if (!os.good()) fail("write failed");
}

void Simulator::restore_checkpoint(std::istream& is) {
  char magic[sizeof(kCheckpointMagic)] = {};
  is.read(magic, sizeof(magic));
  if (is.gcount() != sizeof(magic) ||
      !std::equal(std::begin(magic), std::end(magic), kCheckpointMagic)) {
    fail("bad magic (not a checkpoint file?)");
  }
  std::uint32_t version = 0;
  std::uint64_t size = 0;
  std::uint32_t want_crc = 0;
  try {
    version = binio::read_u32(is);
    size = binio::read_u64(is);
    want_crc = binio::read_u32(is);
  } catch (const std::exception&) {
    // binio's truncated-stream error must surface as a CheckpointError
    // like every other rejection — the fuzz suite holds us to that.
    fail("truncated header");
  }
  if (version != kCheckpointVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kCheckpointVersion) + ")");
  }
  if (size > kMaxPayload) fail("implausible payload size");
  // A bit-flipped size field would otherwise drive a multi-GiB allocation
  // below before the truncation check can fire.  When the stream is
  // seekable, bound `size` by the bytes actually present first.
  const std::istream::pos_type here = is.tellg();
  if (here != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type end = is.tellg();
    is.seekg(here);
    if (end != std::istream::pos_type(-1) &&
        static_cast<std::uint64_t>(end - here) < size) {
      fail("truncated payload (" + std::to_string(end - here) + " of " +
           std::to_string(size) + " bytes)");
    }
  } else {
    is.clear();
  }
  std::string payload(static_cast<std::size_t>(size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size) {
    fail("truncated payload (" + std::to_string(is.gcount()) + " of " +
         std::to_string(size) + " bytes)");
  }
  const std::uint32_t got_crc = crc32(payload.data(), payload.size());
  if (got_crc != want_crc) fail("CRC mismatch (corrupt payload)");

  std::istringstream ps(payload, std::ios::binary);
  try {
    const TimeStep t = binio::read_i64(ps);
    const std::uint64_t topology_version = binio::read_u64(ps);
    const PacketCount initial_total = binio::read_i64(ps);
    const PacketCount want_sum_q = binio::read_i64(ps);
    const std::uint64_t sum_sq_lo = binio::read_u64(ps);
    const std::uint64_t sum_sq_hi = binio::read_u64(ps);

    const std::uint32_t node_count = binio::read_u32(ps);
    if (node_count != queue_.size()) {
      fail("node count mismatch: checkpoint has " +
           std::to_string(node_count) + ", network has " +
           std::to_string(queue_.size()));
    }
    std::vector<PacketCount> queue(node_count);
    for (std::uint32_t v = 0; v < node_count; ++v) {
      queue[v] = binio::read_i64(ps);
      if (queue[v] < 0) fail("negative queue in payload");
    }

    const std::uint32_t edge_count = binio::read_u32(ps);
    if (static_cast<EdgeId>(edge_count) != mask_.size()) {
      fail("edge count mismatch: checkpoint has " +
           std::to_string(edge_count) + ", network has " +
           std::to_string(mask_.size()));
    }
    std::vector<char> active(edge_count);
    for (std::uint32_t e = 0; e < edge_count; ++e) {
      active[e] = static_cast<char>(binio::read_u8(ps));
    }

    // v5: live node specs (see save side).
    const std::uint32_t spec_count = binio::read_u32(ps);
    if (spec_count != node_count) {
      fail("spec count mismatch: checkpoint has " +
           std::to_string(spec_count) + ", network has " +
           std::to_string(node_count));
    }
    std::vector<NodeSpec> specs(spec_count);
    for (std::uint32_t v = 0; v < spec_count; ++v) {
      specs[v].in = binio::read_i64(ps);
      specs[v].out = binio::read_i64(ps);
      specs[v].retention = binio::read_i64(ps);
      if (specs[v].in < 0 || specs[v].out < 0 || specs[v].retention < 0) {
        fail("negative node spec in payload");
      }
    }

    CumulativeStats totals;
    totals.injected = binio::read_i64(ps);
    totals.proposed = binio::read_i64(ps);
    totals.suppressed = binio::read_i64(ps);
    totals.conflicted = binio::read_i64(ps);
    totals.sent = binio::read_i64(ps);
    totals.lost = binio::read_i64(ps);
    totals.delivered = binio::read_i64(ps);
    totals.extracted = binio::read_i64(ps);
    totals.crash_wiped = binio::read_i64(ps);
    totals.shed = binio::read_i64(ps);
    totals.steps = binio::read_i64(ps);

    const std::uint64_t seed = binio::read_u64(ps);

    std::array<std::string, kComponentLabels.size()> blobs;
    for (std::size_t i = 0; i < kComponentLabels.size(); ++i) {
      const std::string label = binio::read_string(ps);
      if (label != kComponentLabels[i]) {
        fail("expected component '" + std::string(kComponentLabels[i]) +
             "', found '" + label + "'");
      }
      blobs[i] = binio::read_string(ps);
    }
    const bool had_faults = binio::read_u8(ps) != 0;
    if (had_faults && faults_ == nullptr) {
      fail("checkpoint has fault-injector state but none is installed");
    }
    if (!had_faults && faults_ != nullptr) {
      fail("a fault injector is installed but the checkpoint has none");
    }

    // Telemetry does not influence the trajectory, so the section is
    // forgiving in one direction: a checkpoint with telemetry state
    // restores fine into a simulator without a session (the blob is
    // skipped), and an attached session stays fresh when the checkpoint
    // has none.
    const bool had_telemetry = binio::read_u8(ps) != 0;
    std::string telemetry_blob;
    if (had_telemetry) telemetry_blob = binio::read_string(ps);

    // Admission control does influence the trajectory, so presence is
    // strict in both directions (like the fault injector).
    const bool had_admission = binio::read_u8(ps) != 0;
    std::string admission_blob;
    if (had_admission) admission_blob = binio::read_string(ps);
    if (had_admission && admission_ == nullptr) {
      fail("checkpoint has admission-controller state but none is attached");
    }
    if (!had_admission && admission_ != nullptr) {
      fail("an admission controller is attached but the checkpoint has none");
    }

    // Everything parsed — apply.  Queues go through a full recompute of the
    // Σ accumulators, then cross-check against the saved values: a mismatch
    // means the payload is internally inconsistent.
    queue_ = std::move(queue);
    sum_q_ = 0;
    sum_sq_ = 0;
    for (const PacketCount q : queue_) {
      sum_q_ += q;
      sum_sq_ += detail::square(q);
    }
    if (sum_q_ != want_sum_q) fail("Σq accumulator mismatch");
    const auto want_sum_sq =
        (((static_cast<detail::QuadAccum>(sum_sq_hi) << 32) << 32)) |
        static_cast<detail::QuadAccum>(sum_sq_lo);
    if (sum_sq_ != want_sum_sq) fail("Σq² accumulator mismatch");

    for (EdgeId e = 0; e < mask_.size(); ++e) {
      mask_.set_active(e, active[static_cast<std::size_t>(e)] != 0);
    }
    for (std::uint32_t v = 0; v < spec_count; ++v) {
      if (!(net_.spec(static_cast<NodeId>(v)) == specs[v])) {
        net_.set_spec(static_cast<NodeId>(v), specs[v]);
      }
    }
    // Specs may have changed the role sets; a sharding engine's per-shard
    // role lists must follow.
    if (engine_ != nullptr) engine_->refresh_roles(net_);
    t_ = t;
    topology_version_ = topology_version;
    initial_total_ = initial_total;
    totals_ = totals;

    // Adopting the saved seed (rather than requiring the assembled one to
    // match) keeps the resume bitwise-faithful even when the restoring
    // process was launched with a different --seed.
    options_.seed = seed;

    const auto load = [&](std::size_t i, auto& target) {
      std::istringstream blob(blobs[i], std::ios::binary);
      target.load_state(blob);
    };
    protocol_->reset();
    load(0, *protocol_);
    load(1, *arrival_);
    load(2, *loss_);
    load(3, *scheduler_);
    load(4, *dynamics_);
    if (faults_ != nullptr) load(5, *faults_);
    if (had_telemetry && telemetry_ != nullptr) {
      std::istringstream blob(telemetry_blob, std::ios::binary);
      telemetry_->load_state(blob);
    }
    if (had_admission && admission_ != nullptr) {
      std::istringstream blob(admission_blob, std::ios::binary);
      admission_->load_state(blob);
    }
  } catch (const CheckpointError&) {
    throw;
  } catch (const std::exception& e) {
    fail(std::string("malformed payload: ") + e.what());
  }
}

void write_checkpoint_file(const Simulator& sim, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.is_open()) fail("cannot open '" + path + "' for writing");
  sim.save_checkpoint(os);
  os.flush();
  if (!os.good()) fail("write to '" + path + "' failed");
}

void write_checkpoint_file_atomic(const Simulator& sim,
                                  const std::string& path) {
  std::ostringstream os(std::ios::binary);
  sim.save_checkpoint(os);
  if (!common::write_file_durable(path, os.str(), "ckpt")) {
    fail("durable write to '" + path + "' failed");
  }
}

void restore_checkpoint_file(Simulator& sim, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) fail("cannot open '" + path + "'");
  sim.restore_checkpoint(is);
}

}  // namespace lgg::core
