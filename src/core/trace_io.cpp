#include "core/trace_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "analysis/csv.hpp"
#include "graph/graph_io.hpp"

namespace lgg::core {

void write_network(std::ostream& os, const SdNetwork& net) {
  graph::write_graph(os, net.topology());
  for (NodeId v = 0; v < net.node_count(); ++v) {
    const NodeSpec& spec = net.spec(v);
    if (spec.in == 0 && spec.out == 0 && spec.retention == 0) continue;
    os << "role " << v << ' ' << spec.in << ' ' << spec.out << ' '
       << spec.retention << '\n';
  }
}

std::string to_string(const SdNetwork& net) {
  std::ostringstream os;
  write_network(os, net);
  return os.str();
}

SdNetwork read_network(std::istream& is) {
  // Split the stream: graph lines first, then role lines.  The graph
  // parser does not know "role", so pre-scan.
  std::ostringstream graph_part;
  struct Role {
    long long v, in, out, retention;
    int line;
  };
  std::vector<Role> roles;
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    std::string stripped = line;
    if (const auto hash = stripped.find('#'); hash != std::string::npos) {
      stripped.resize(hash);
    }
    std::istringstream ls(stripped);
    std::string keyword;
    if (ls >> keyword && keyword == "role") {
      Role r{0, 0, 0, 0, lineno};
      if (!(ls >> r.v >> r.in >> r.out >> r.retention)) {
        throw graph::ParseError("bad role line", lineno);
      }
      roles.push_back(r);
    } else {
      graph_part << line << '\n';
    }
  }
  std::istringstream graph_is(graph_part.str());
  SdNetwork net(graph::read_graph(graph_is));
  for (const Role& r : roles) {
    if (r.v < 0 || r.v >= net.node_count()) {
      throw graph::ParseError("role node out of range", r.line);
    }
    if (r.in < 0 || r.out < 0 || r.retention < 0) {
      throw graph::ParseError("negative role rate", r.line);
    }
    if (r.in == 0 && r.out == 0 && r.retention == 0) {
      throw graph::ParseError("role line with all-zero rates", r.line);
    }
    net.set_generalized(static_cast<NodeId>(r.v), r.in, r.out, r.retention);
  }
  return net;
}

SdNetwork network_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_network(is);
}

void write_trajectory_csv(std::ostream& os,
                          const MetricsRecorder& recorder) {
  analysis::CsvWriter csv(os);
  csv.write_row({"t", "network_state", "total_packets", "max_queue",
                 "injected", "proposed", "suppressed", "conflicted", "sent",
                 "lost", "delivered", "extracted", "crash_wiped"});
  for (std::size_t t = 0; t < recorder.size(); ++t) {
    const StepStats& s = recorder.steps()[t];
    csv.write_values(static_cast<std::int64_t>(t),
                     recorder.network_state()[t],
                     recorder.total_packets()[t], recorder.max_queue()[t],
                     s.injected, s.proposed, s.suppressed, s.conflicted,
                     s.sent, s.lost, s.delivered, s.extracted,
                     s.crash_wiped);
  }
}

}  // namespace lgg::core
