// Per-phase observability for the simulation hot path.
//
// A StepProfiler attached to a Simulator (set_profiler) accumulates, for
// each of the eight pipeline phases of one synchronous step, the wall time
// spent and a phase-specific work counter (packets injected, transmissions
// proposed, ...).  The simulator pays two steady_clock reads per phase when
// a profiler is attached and nothing at all otherwise, so production runs
// stay unperturbed while `lgg_sim --profile` and bench_perf_core can print
// a phase breakdown and emit machine-readable JSON.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

namespace lgg::core {

/// The eight phases of Simulator::step(), in execution order.
enum class StepPhase : std::uint8_t {
  kDynamics = 0,    ///< topology dynamics mutate the edge mask
  kInjection,       ///< sources add packets
  kDeclaration,     ///< nodes declare queue lengths
  kSelection,       ///< the protocol proposes transmissions
  kScheduling,      ///< interference scheduling
  kConflict,        ///< link-conflict resolution
  kLossApply,       ///< losses decided + transmissions applied
  kExtraction,      ///< sinks remove packets
};

inline constexpr std::size_t kStepPhaseCount = 8;

[[nodiscard]] std::string_view to_string(StepPhase phase);

/// Accumulated cost of one phase across all profiled steps.  Serial phases
/// have cpu_nanos == nanos; a shard-parallel phase reports the wall time of
/// its slowest shard (phases do not overlap, so the per-phase walls still
/// sum to the step wall) and the summed CPU time across shards (which can
/// legitimately exceed the wall — that excess is the realized parallelism).
struct PhaseTotals {
  std::uint64_t nanos = 0;      ///< wall time, nanoseconds
  std::uint64_t cpu_nanos = 0;  ///< cpu time summed over shards
  std::uint64_t items = 0;      ///< phase-specific work counter
};

class StepProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Adds one serial phase observation (called by the simulator once per
  /// phase per step while attached).  Serial wall time is CPU time.
  void record(StepPhase phase, std::uint64_t nanos, std::uint64_t items) {
    auto& totals = phases_[static_cast<std::size_t>(phase)];
    totals.nanos += nanos;
    totals.cpu_nanos += nanos;
    totals.items += items;
  }

  /// Adds one shard-parallel phase observation: `wall_nanos` is the
  /// max-over-shards elapsed time (what the step actually waited),
  /// `cpu_nanos` the sum-over-shards elapsed time (what the cores burned).
  /// Summing per-shard walls into `nanos` would double-count the step wall
  /// K-fold, which is exactly the bug this split exists to avoid.
  void record_parallel(StepPhase phase, std::uint64_t wall_nanos,
                       std::uint64_t cpu_nanos, std::uint64_t items) {
    auto& totals = phases_[static_cast<std::size_t>(phase)];
    totals.nanos += wall_nanos;
    totals.cpu_nanos += cpu_nanos;
    totals.items += items;
  }

  /// Marks the end of one profiled step.
  void finish_step() { ++steps_; }

  void reset();

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] const PhaseTotals& phase(StepPhase p) const {
    return phases_[static_cast<std::size_t>(p)];
  }
  /// Σ over phases — the profiled portion of the step wall time.
  [[nodiscard]] std::uint64_t total_nanos() const;
  /// Σ over phases of shard CPU time (== total_nanos() for serial runs).
  [[nodiscard]] std::uint64_t total_cpu_nanos() const;
  /// Throughput over the profiled portion (0 before the first step).
  [[nodiscard]] double steps_per_second() const;

  /// Aligned phase-breakdown table (phase, time, share, ns/step, items).
  [[nodiscard]] std::string table() const;
  /// Machine-readable summary (steps, steps/sec, per-phase nanos/items).
  [[nodiscard]] std::string json() const;

 private:
  std::array<PhaseTotals, kStepPhaseCount> phases_{};
  std::uint64_t steps_ = 0;
};

}  // namespace lgg::core
