#include "core/faults.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "common/binio.hpp"
#include "common/require.hpp"
#include "obs/registry.hpp"

namespace lgg::core {

namespace {
constexpr TimeStep kForever = std::numeric_limits<TimeStep>::max();

/// End of a window starting at `at` with the given duration (-1 = forever).
TimeStep window_end(TimeStep at, TimeStep duration) {
  if (duration < 0) return kForever;
  if (at > kForever - duration) return kForever;
  return at + duration;
}

bool window_active(const FaultEvent& e, TimeStep t) {
  return t >= e.at && t < window_end(e.at, e.duration);
}
}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSinkOutage: return "sink_outage";
    case FaultKind::kSourceSurge: return "surge";
    case FaultKind::kByzantine: return "byzantine";
    case FaultKind::kEdgeRemove: return "edge_remove";
    case FaultKind::kEdgeAdd: return "edge_add";
    case FaultKind::kNodeLeave: return "node_leave";
    case FaultKind::kNodeJoin: return "node_join";
    case FaultKind::kCapacityNudge: return "nudge";
  }
  return "?";
}

std::string_view to_string(CrashMode mode) {
  return mode == CrashMode::kWipe ? "wipe" : "freeze";
}

FaultSchedule& FaultSchedule::add(FaultEvent event) {
  const bool edge_kind = event.kind == FaultKind::kEdgeRemove ||
                         event.kind == FaultKind::kEdgeAdd;
  if (edge_kind) {
    LGG_REQUIRE(event.edge >= 0, "FaultSchedule::add: negative edge");
  } else {
    LGG_REQUIRE(event.node >= 0, "FaultSchedule::add: negative node");
  }
  LGG_REQUIRE(event.at >= 0, "FaultSchedule::add: negative start step");
  LGG_REQUIRE(event.duration != 0,
              "FaultSchedule::add: zero-length window (use -1 for forever)");
  LGG_REQUIRE(event.kind != FaultKind::kSourceSurge || event.extra > 0,
              "FaultSchedule::add: surge needs extra > 0");
  LGG_REQUIRE(event.kind != FaultKind::kByzantine || event.declare >= 0,
              "FaultSchedule::add: byzantine declaration must be >= 0");
  LGG_REQUIRE(event.kind != FaultKind::kCapacityNudge ||
                  event.din != 0 || event.dout != 0,
              "FaultSchedule::add: nudge needs din or dout nonzero");
  if (is_churn(event.kind)) ++churn_events_;
  events_.push_back(event);
  return *this;
}

FaultSchedule& FaultSchedule::set_random_crashes(RandomCrashConfig config) {
  LGG_REQUIRE(config.p_per_step >= 0.0 && config.p_per_step <= 1.0,
              "random_crashes: p must be in [0, 1]");
  LGG_REQUIRE(config.min_down >= 1 && config.max_down >= config.min_down,
              "random_crashes: need 1 <= min_down <= max_down");
  random_ = config;
  return *this;
}

void FaultSchedule::validate(const SdNetwork& net) const {
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kEdgeRemove || e.kind == FaultKind::kEdgeAdd) {
      LGG_REQUIRE(net.topology().valid_edge(e.edge),
                  "fault schedule: edge " + std::to_string(e.edge) +
                      " is not in the network");
      continue;
    }
    LGG_REQUIRE(net.topology().valid_node(e.node),
                "fault schedule: node " + std::to_string(e.node) +
                    " is not in the network");
    if (e.kind == FaultKind::kSourceSurge) {
      LGG_REQUIRE(net.spec(e.node).in > 0,
                  "fault schedule: surge node " + std::to_string(e.node) +
                      " is not a source (in = 0)");
    }
    if (e.kind == FaultKind::kSinkOutage) {
      LGG_REQUIRE(net.spec(e.node).out > 0,
                  "fault schedule: sink_outage node " +
                      std::to_string(e.node) + " is not a sink (out = 0)");
    }
  }
}

void FaultSchedule::validate_strict(const SdNetwork& net) const {
  validate(net);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const FaultEvent& a = events_[i];
    for (std::size_t j = i + 1; j < events_.size(); ++j) {
      const FaultEvent& b = events_[j];
      const bool same_target =
          a.kind == b.kind && a.node == b.node && a.edge == b.edge;
      LGG_REQUIRE(!(same_target && a.at == b.at),
                  "fault schedule: duplicate " +
                      std::string(to_string(a.kind)) + " event at step " +
                      std::to_string(a.at));
      if (a.kind == FaultKind::kCrash && b.kind == FaultKind::kCrash &&
          a.node == b.node) {
        const bool overlap = a.at < window_end(b.at, b.duration) &&
                             b.at < window_end(a.at, a.duration);
        LGG_REQUIRE(!overlap,
                    "fault schedule: overlapping crash windows on node " +
                        std::to_string(a.node));
      }
    }
  }
  // Replay the churn sequence in firing order (stable by `at`, schedule
  // order breaking ties — exactly how apply_churn fires them): every
  // node_join must find its node departed, every edge_add its edge
  // removed, and the inverse events must not double-fire.
  std::vector<const FaultEvent*> churn;
  for (const FaultEvent& e : events_) {
    if (is_churn(e.kind)) churn.push_back(&e);
  }
  std::stable_sort(churn.begin(), churn.end(),
                   [](const FaultEvent* a, const FaultEvent* b) {
                     return a->at < b->at;
                   });
  std::vector<char> edge_out(static_cast<std::size_t>(
                                 net.topology().edge_count()),
                             0);
  std::vector<char> node_out(static_cast<std::size_t>(net.node_count()), 0);
  for (const FaultEvent* e : churn) {
    switch (e->kind) {
      case FaultKind::kEdgeRemove: {
        auto& out = edge_out[static_cast<std::size_t>(e->edge)];
        LGG_REQUIRE(!out, "fault schedule: edge " + std::to_string(e->edge) +
                              " removed twice (step " +
                              std::to_string(e->at) + ")");
        out = 1;
        break;
      }
      case FaultKind::kEdgeAdd: {
        auto& out = edge_out[static_cast<std::size_t>(e->edge)];
        LGG_REQUIRE(out, "fault schedule: edge_add at step " +
                             std::to_string(e->at) + " for edge " +
                             std::to_string(e->edge) +
                             " without a prior edge_remove");
        out = 0;
        break;
      }
      case FaultKind::kNodeLeave: {
        auto& out = node_out[static_cast<std::size_t>(e->node)];
        LGG_REQUIRE(!out, "fault schedule: node " + std::to_string(e->node) +
                              " leaves twice (step " + std::to_string(e->at) +
                              ")");
        out = 1;
        break;
      }
      case FaultKind::kNodeJoin: {
        auto& out = node_out[static_cast<std::size_t>(e->node)];
        LGG_REQUIRE(out, "fault schedule: node_join at step " +
                             std::to_string(e->at) + " for node " +
                             std::to_string(e->node) +
                             " without a prior node_leave");
        out = 0;
        break;
      }
      case FaultKind::kCapacityNudge:
        LGG_REQUIRE(!node_out[static_cast<std::size_t>(e->node)],
                    "fault schedule: nudge at step " + std::to_string(e->at) +
                        " targets departed node " + std::to_string(e->node));
        break;
      default:
        break;
    }
  }
}

namespace {

[[noreturn]] void spec_fail(const std::string& clause, const std::string& why) {
  LGG_REQUIRE(false, "bad --faults clause '" + clause + "': " + why);
  std::abort();  // unreachable; LGG_REQUIRE(false) throws
}

std::int64_t spec_int(const std::string& clause, const std::string& key,
                      const std::string& value) {
  std::size_t used = 0;
  std::int64_t parsed = 0;
  try {
    parsed = std::stoll(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    spec_fail(clause, key + " wants an integer, got '" + value + "'");
  }
  return parsed;
}

double spec_double(const std::string& clause, const std::string& key,
                   const std::string& value) {
  std::size_t used = 0;
  double parsed = 0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    spec_fail(clause, key + " wants a number, got '" + value + "'");
  }
  return parsed;
}

}  // namespace

FaultSchedule parse_fault_spec(const std::string& spec) {
  FaultSchedule schedule;
  std::istringstream clauses(spec);
  std::string clause;
  bool any = false;
  while (std::getline(clauses, clause, ';')) {
    if (clause.empty()) continue;
    any = true;
    const auto colon = clause.find(':');
    const std::string kind_name = clause.substr(0, colon);

    // Parse key=value pairs into a small flat list.
    std::vector<std::pair<std::string, std::string>> kv;
    if (colon != std::string::npos) {
      std::istringstream pairs(clause.substr(colon + 1));
      std::string pair;
      while (std::getline(pairs, pair, ',')) {
        const auto eq = pair.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == pair.size()) {
          spec_fail(clause, "expected key=value, got '" + pair + "'");
        }
        kv.emplace_back(pair.substr(0, eq), pair.substr(eq + 1));
      }
    }
    const auto take = [&](const std::string& key) -> const std::string* {
      for (const auto& [k, v] : kv) {
        if (k == key) return &v;
      }
      return nullptr;
    };
    const auto parse_mode = [&](CrashMode fallback) {
      const std::string* m = take("mode");
      if (m == nullptr) return fallback;
      if (*m == "wipe") return CrashMode::kWipe;
      if (*m == "freeze") return CrashMode::kFreeze;
      spec_fail(clause, "mode must be wipe or freeze, got '" + *m + "'");
    };

    if (kind_name == "random_crashes") {
      RandomCrashConfig config;
      const std::string* p = take("p");
      if (p == nullptr) spec_fail(clause, "random_crashes needs p=<prob>");
      config.p_per_step = spec_double(clause, "p", *p);
      if (config.p_per_step < 0.0 || config.p_per_step > 1.0) {
        spec_fail(clause, "p must be in [0, 1]");
      }
      if (const std::string* down = take("down")) {
        const auto dots = down->find("..");
        if (dots == std::string::npos) {
          config.min_down = config.max_down =
              spec_int(clause, "down", *down);
        } else {
          config.min_down = spec_int(clause, "down", down->substr(0, dots));
          config.max_down = spec_int(clause, "down", down->substr(dots + 2));
        }
        if (config.min_down < 1 || config.max_down < config.min_down) {
          spec_fail(clause, "down wants 1 <= lo <= hi");
        }
      }
      config.mode = parse_mode(CrashMode::kWipe);
      schedule.set_random_crashes(config);
      continue;
    }

    FaultEvent event;
    if (kind_name == "crash") {
      event.kind = FaultKind::kCrash;
    } else if (kind_name == "sink_outage") {
      event.kind = FaultKind::kSinkOutage;
    } else if (kind_name == "surge") {
      event.kind = FaultKind::kSourceSurge;
    } else if (kind_name == "byzantine") {
      event.kind = FaultKind::kByzantine;
    } else if (kind_name == "edge_remove") {
      event.kind = FaultKind::kEdgeRemove;
    } else if (kind_name == "edge_add") {
      event.kind = FaultKind::kEdgeAdd;
    } else if (kind_name == "node_leave") {
      event.kind = FaultKind::kNodeLeave;
    } else if (kind_name == "node_join") {
      event.kind = FaultKind::kNodeJoin;
    } else if (kind_name == "nudge") {
      event.kind = FaultKind::kCapacityNudge;
    } else {
      spec_fail(clause, "unknown fault kind '" + kind_name +
                            "' (crash, sink_outage, surge, byzantine, "
                            "random_crashes, edge_remove, edge_add, "
                            "node_leave, node_join, nudge)");
    }
    const bool edge_kind = event.kind == FaultKind::kEdgeRemove ||
                           event.kind == FaultKind::kEdgeAdd;
    if (edge_kind) {
      const std::string* edge = take("edge");
      if (edge == nullptr) spec_fail(clause, "missing edge=<id>");
      event.edge = static_cast<EdgeId>(spec_int(clause, "edge", *edge));
      if (event.edge < 0) spec_fail(clause, "edge must be >= 0");
    } else {
      const std::string* node = take("node");
      if (node == nullptr) spec_fail(clause, "missing node=<id>");
      event.node = static_cast<NodeId>(spec_int(clause, "node", *node));
      if (event.node < 0) spec_fail(clause, "node must be >= 0");
    }
    if (const std::string* at = take("at")) {
      event.at = spec_int(clause, "at", *at);
      if (event.at < 0) spec_fail(clause, "at must be >= 0");
    }
    if (const std::string* dur = take("for")) {
      if (is_churn(event.kind)) {
        spec_fail(clause, "churn events are instantaneous (no for=)");
      }
      event.duration = spec_int(clause, "for", *dur);
      if (event.duration == 0 || event.duration < -1) {
        spec_fail(clause, "for must be >= 1 (or -1 for forever)");
      }
    }
    event.mode = parse_mode(CrashMode::kWipe);
    if (event.kind == FaultKind::kCapacityNudge) {
      const std::string* din = take("din");
      const std::string* dout = take("dout");
      if (din == nullptr && dout == nullptr) {
        spec_fail(clause, "nudge needs din=<delta> and/or dout=<delta>");
      }
      if (din != nullptr) event.din = spec_int(clause, "din", *din);
      if (dout != nullptr) event.dout = spec_int(clause, "dout", *dout);
      if (event.din == 0 && event.dout == 0) {
        spec_fail(clause, "nudge with din=0,dout=0 is a no-op");
      }
    }
    if (event.kind == FaultKind::kSourceSurge) {
      const std::string* extra = take("extra");
      if (extra == nullptr) spec_fail(clause, "surge needs extra=<packets>");
      event.extra = spec_int(clause, "extra", *extra);
      if (event.extra <= 0) spec_fail(clause, "extra must be > 0");
    }
    if (event.kind == FaultKind::kByzantine) {
      const std::string* declare = take("declare");
      if (declare == nullptr) {
        spec_fail(clause, "byzantine needs declare=<value>");
      }
      event.declare = spec_int(clause, "declare", *declare);
      if (event.declare < 0) spec_fail(clause, "declare must be >= 0");
    }
    schedule.add(event);
  }
  LGG_REQUIRE(any, "empty --faults spec");
  return schedule;
}

std::string to_string(const FaultSchedule& schedule) {
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ';';
    first = false;
  };
  for (const FaultEvent& e : schedule.events()) {
    sep();
    if (e.kind == FaultKind::kEdgeRemove || e.kind == FaultKind::kEdgeAdd) {
      os << to_string(e.kind) << ":edge=" << e.edge << ",at=" << e.at;
      continue;
    }
    if (is_churn(e.kind)) {
      os << to_string(e.kind) << ":node=" << e.node << ",at=" << e.at;
      if (e.kind == FaultKind::kCapacityNudge) {
        if (e.din != 0) os << ",din=" << e.din;
        if (e.dout != 0) os << ",dout=" << e.dout;
      }
      continue;
    }
    os << to_string(e.kind) << ":node=" << e.node << ",at=" << e.at
       << ",for=" << e.duration;
    if (e.kind == FaultKind::kCrash) os << ",mode=" << to_string(e.mode);
    if (e.kind == FaultKind::kSourceSurge) os << ",extra=" << e.extra;
    if (e.kind == FaultKind::kByzantine) os << ",declare=" << e.declare;
  }
  const RandomCrashConfig& r = schedule.random_crashes();
  if (r.p_per_step > 0.0) {
    sep();
    // Shortest round-tripping form: a re-parsed artifact must replay with
    // exactly this probability, not a 6-significant-digit approximation.
    std::array<char, 32> buffer{};
    const auto [ptr, ec] =
        std::to_chars(buffer.data(), buffer.data() + buffer.size(),
                      r.p_per_step);
    LGG_REQUIRE(ec == std::errc(), "to_string: to_chars failed");
    os << "random_crashes:p=" << std::string_view(buffer.data(), ptr)
       << ",down=" << r.min_down << ".." << r.max_down
       << ",mode=" << to_string(r.mode);
  }
  return os.str();
}

FaultInjector::FaultInjector(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)), rng_(seed) {}

void FaultInjector::ensure_sized(NodeId n) {
  const auto size = static_cast<std::size_t>(n);
  if (down_until_.size() >= size) return;
  down_until_.resize(size, 0);
  down_now_.resize(size, 0);
  surge_.resize(size, 0);
  sink_out_.resize(size, 0);
  departed_.resize(size, 0);
  parked_specs_.resize(size);
}

void FaultInjector::ensure_edges(EdgeId n) {
  const auto size = static_cast<std::size_t>(n);
  if (edge_removed_.size() < size) edge_removed_.resize(size, 0);
}

bool FaultInjector::apply_churn(TimeStep t, SdNetwork& net,
                                TopologyDelta& delta,
                                const std::function<void(NodeId)>& wipe) {
  if (!schedule_.has_churn_events()) return false;
  ensure_sized(net.node_count());
  ensure_edges(net.topology().edge_count());
  const std::size_t before = delta.edges.size() + delta.rates.size() +
                             delta.joined.size() + delta.left.size();
  for (const FaultEvent& e : schedule_.events()) {
    if (!is_churn(e.kind) || e.at != t) continue;
    switch (e.kind) {
      case FaultKind::kEdgeRemove: {
        auto& removed = edge_removed_[static_cast<std::size_t>(e.edge)];
        if (!removed) {
          removed = 1;
          ++removed_edge_count_;
          delta.edges.push_back({e.edge, false});
        }
        break;
      }
      case FaultKind::kEdgeAdd: {
        auto& removed = edge_removed_[static_cast<std::size_t>(e.edge)];
        if (removed) {
          removed = 0;
          --removed_edge_count_;
          delta.edges.push_back({e.edge, true});
        }
        break;
      }
      case FaultKind::kNodeLeave: {
        const auto i = static_cast<std::size_t>(e.node);
        if (departed_[i]) break;
        departed_[i] = 1;
        ++departed_count_;
        const NodeSpec spec = net.spec(e.node);
        parked_specs_[i] = spec;
        if (spec != NodeSpec{}) {
          net.set_spec(e.node, NodeSpec{});
          delta.rates.push_back({e.node, spec, NodeSpec{}});
        }
        wipe(e.node);
        delta.left.push_back(e.node);
        break;
      }
      case FaultKind::kNodeJoin: {
        const auto i = static_cast<std::size_t>(e.node);
        if (!departed_[i]) break;
        departed_[i] = 0;
        --departed_count_;
        const NodeSpec spec = parked_specs_[i];
        if (spec != NodeSpec{}) {
          net.set_spec(e.node, spec);
          delta.rates.push_back({e.node, NodeSpec{}, spec});
        }
        delta.joined.push_back(e.node);
        break;
      }
      case FaultKind::kCapacityNudge: {
        if (departed_[static_cast<std::size_t>(e.node)]) break;
        const NodeSpec before_spec = net.spec(e.node);
        NodeSpec after = before_spec;
        after.in = std::max<Cap>(0, before_spec.in + e.din);
        after.out = std::max<Cap>(0, before_spec.out + e.dout);
        if (after != before_spec) {
          net.set_spec(e.node, after);
          delta.rates.push_back({e.node, before_spec, after});
        }
        break;
      }
      default:
        break;
    }
  }
  const std::size_t after = delta.edges.size() + delta.rates.size() +
                            delta.joined.size() + delta.left.size();
  if (after != before && churn_counter_ != nullptr) {
    churn_counter_->add(static_cast<std::uint64_t>(after - before));
  }
  return after != before;
}

bool FaultInjector::edge_removed(EdgeId e) const {
  const auto i = static_cast<std::size_t>(e);
  return i < edge_removed_.size() && edge_removed_[i] != 0;
}

bool FaultInjector::node_departed(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return i < departed_.size() && departed_[i] != 0;
}

FaultInjector::StepEffects FaultInjector::begin_step(
    TimeStep t, const SdNetwork& net,
    const std::function<void(NodeId)>& wipe) {
  ensure_sized(net.node_count());
  StepEffects effects;

  const auto crash = [&](NodeId v, TimeStep until, CrashMode mode) {
    auto& down = down_until_[static_cast<std::size_t>(v)];
    if (down > t) {
      // Already down: overlapping windows extend the outage.
      down = std::max(down, until);
      return;
    }
    down = until;
    if (mode == CrashMode::kWipe) wipe(v);
  };

  // Scheduled events starting at t.
  for (const FaultEvent& e : schedule_.events()) {
    if (e.kind == FaultKind::kCrash && e.at == t) {
      crash(e.node, window_end(e.at, e.duration), e.mode);
    }
  }

  // Random crashes: iterate nodes in a fixed order on the injector's own
  // RNG stream, so outcomes are seed-deterministic and independent of the
  // simulation RNG.
  const RandomCrashConfig& random = schedule_.random_crashes();
  if (random.p_per_step > 0.0) {
    const NodeId n = net.node_count();
    for (NodeId v = 0; v < n; ++v) {
      if (down_until_[static_cast<std::size_t>(v)] > t) continue;
      if (!rng_.bernoulli(random.p_per_step)) continue;
      const TimeStep down =
          rng_.uniform_int(random.min_down, random.max_down);
      crash(v, window_end(t, down), random.mode);
    }
  }

  // Refresh the down set (covers recoveries: down_until <= t means up).
  went_down_.clear();
  came_up_.clear();
  for (std::size_t v = 0; v < down_now_.size(); ++v) {
    const char now = down_until_[v] > t ? 1 : 0;
    if (now != down_now_[v]) {
      down_now_[v] = now;
      effects.down_set_changed = true;
      if (now) {
        went_down_.push_back(static_cast<NodeId>(v));
        if (crashes_counter_ != nullptr) crashes_counter_->add(1);
      } else {
        came_up_.push_back(static_cast<NodeId>(v));
        if (recoveries_counter_ != nullptr) recoveries_counter_->add(1);
      }
    }
    if (now) effects.any_down = true;
  }

  // Windowed effects, recomputed from the schedule each step.
  for (const NodeId v : surge_nodes_) surge_[static_cast<std::size_t>(v)] = 0;
  surge_nodes_.clear();
  for (const NodeId v : out_nodes_) sink_out_[static_cast<std::size_t>(v)] = 0;
  out_nodes_.clear();
  byz_active_.clear();
  for (const FaultEvent& e : schedule_.events()) {
    // Churn events are instantaneous mutations handled by apply_churn, not
    // windowed effects (their default duration of -1 would otherwise read
    // as forever).
    if (is_churn(e.kind)) continue;
    if (!window_active(e, t)) continue;
    switch (e.kind) {
      case FaultKind::kCrash:
        break;
      case FaultKind::kSinkOutage:
        if (!sink_out_[static_cast<std::size_t>(e.node)]) {
          sink_out_[static_cast<std::size_t>(e.node)] = 1;
          out_nodes_.push_back(e.node);
        }
        break;
      case FaultKind::kSourceSurge:
        if (surge_[static_cast<std::size_t>(e.node)] == 0) {
          surge_nodes_.push_back(e.node);
        }
        surge_[static_cast<std::size_t>(e.node)] += e.extra;
        break;
      case FaultKind::kByzantine:
        if (!down_now_[static_cast<std::size_t>(e.node)]) {
          byz_active_.emplace_back(e.node, e.declare);
        }
        break;
      default:  // churn kinds: skipped above
        break;
    }
  }
  effects.any_byzantine = !byz_active_.empty();
  return effects;
}

bool FaultInjector::node_down(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return i < down_now_.size() && down_now_[i] != 0;
}

bool FaultInjector::sink_out(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return i < sink_out_.size() && sink_out_[i] != 0;
}

PacketCount FaultInjector::surge_extra(NodeId v) const {
  const auto i = static_cast<std::size_t>(v);
  return i < surge_.size() ? surge_[i] : 0;
}

void FaultInjector::apply_to_mask(const SdNetwork& net,
                                  graph::EdgeMask& mask) const {
  for (std::size_t v = 0; v < down_now_.size(); ++v) {
    const bool cut = down_now_[v] != 0 ||
                     (v < departed_.size() && departed_[v] != 0);
    if (!cut) continue;
    for (const graph::IncidentLink link :
         net.topology().incident(static_cast<NodeId>(v))) {
      mask.set_active(link.edge, false);
    }
  }
  for (std::size_t e = 0; e < edge_removed_.size(); ++e) {
    if (edge_removed_[e]) mask.set_active(static_cast<EdgeId>(e), false);
  }
}

void FaultInjector::save_state(std::ostream& os) const {
  // Sparse down map, the fault RNG engine, and the churn overlays; the
  // windowed effects are recomputed from the schedule by the next
  // begin_step.  The live down_now_ bit is saved too: rebuilding it from
  // down_until_ alone would make the first post-restore begin_step report
  // spurious down-transitions, breaking the byte-identical-telemetry
  // resume guarantee.  (Churn cannot be replayed from the schedule either:
  // a resume at step t must not re-fire mutations that already happened.)
  std::uint32_t down_count = 0;
  for (const TimeStep until : down_until_) {
    if (until > 0) ++down_count;
  }
  binio::write_u32(os, down_count);
  for (std::size_t v = 0; v < down_until_.size(); ++v) {
    if (down_until_[v] == 0) continue;
    binio::write_i64(os, static_cast<std::int64_t>(v));
    binio::write_i64(os, down_until_[v]);
    binio::write_u8(os, down_now_[v] != 0 ? 1 : 0);
  }
  std::ostringstream engine;
  engine << rng_.engine();
  binio::write_string(os, engine.str());

  // Churn overlays: removed edges, then departed nodes with their parked
  // specs.  Both sparse — churn typically touches a handful of entries.
  binio::write_u32(os, static_cast<std::uint32_t>(removed_edge_count_));
  for (std::size_t e = 0; e < edge_removed_.size(); ++e) {
    if (edge_removed_[e]) {
      binio::write_i64(os, static_cast<std::int64_t>(e));
    }
  }
  binio::write_u32(os, static_cast<std::uint32_t>(departed_count_));
  for (std::size_t v = 0; v < departed_.size(); ++v) {
    if (!departed_[v]) continue;
    binio::write_i64(os, static_cast<std::int64_t>(v));
    binio::write_i64(os, parked_specs_[v].in);
    binio::write_i64(os, parked_specs_[v].out);
    binio::write_i64(os, parked_specs_[v].retention);
  }
}

void FaultInjector::load_state(std::istream& is) {
  std::fill(down_until_.begin(), down_until_.end(), TimeStep{0});
  std::fill(down_now_.begin(), down_now_.end(), char{0});
  const std::uint32_t down_count = binio::read_u32(is);
  for (std::uint32_t i = 0; i < down_count; ++i) {
    const auto v = static_cast<std::size_t>(binio::read_i64(is));
    const TimeStep until = binio::read_i64(is);
    const std::uint8_t now = binio::read_u8(is);
    if (v >= down_until_.size()) {
      ensure_sized(static_cast<NodeId>(v) + 1);
    }
    down_until_[v] = until;
    down_now_[v] = static_cast<char>(now != 0 ? 1 : 0);
  }
  std::istringstream engine(binio::read_string(is));
  engine >> rng_.engine();
  if (engine.fail()) {
    throw std::runtime_error("FaultInjector: corrupt RNG state");
  }

  std::fill(edge_removed_.begin(), edge_removed_.end(), char{0});
  std::fill(departed_.begin(), departed_.end(), char{0});
  removed_edge_count_ = 0;
  departed_count_ = 0;
  const std::uint32_t removed_count = binio::read_u32(is);
  for (std::uint32_t i = 0; i < removed_count; ++i) {
    const auto e = static_cast<std::size_t>(binio::read_i64(is));
    ensure_edges(static_cast<EdgeId>(e) + 1);
    if (!edge_removed_[e]) {
      edge_removed_[e] = 1;
      ++removed_edge_count_;
    }
  }
  const std::uint32_t departed_count = binio::read_u32(is);
  for (std::uint32_t i = 0; i < departed_count; ++i) {
    const auto v = static_cast<std::size_t>(binio::read_i64(is));
    if (v >= departed_.size()) ensure_sized(static_cast<NodeId>(v) + 1);
    NodeSpec spec;
    spec.in = binio::read_i64(is);
    spec.out = binio::read_i64(is);
    spec.retention = binio::read_i64(is);
    if (!departed_[v]) {
      departed_[v] = 1;
      ++departed_count_;
    }
    parked_specs_[v] = spec;
  }
}

void FaultInjector::register_metrics(obs::MetricRegistry& registry) {
  crashes_counter_ = &registry.counter("faults.crashes");
  recoveries_counter_ = &registry.counter("faults.recoveries");
  churn_counter_ = &registry.counter("faults.churn");
}

}  // namespace lgg::core
