#include "core/shard.hpp"

#include "common/require.hpp"
#include "graph/partition.hpp"

namespace lgg::core {

ShardPlan build_shard_plan(const SdNetwork& net, std::uint32_t shard_count) {
  LGG_REQUIRE(shard_count >= 1, "build_shard_plan: shard_count >= 1");
  ShardPlan plan;
  plan.shard_count = shard_count;
  plan.owner = graph::partition_edge_cut(net.topology(), shard_count);
  plan.boundary_edges = graph::cut_edges(net.topology(), plan.owner);
  plan.shards.resize(shard_count);
  plan.local_index.resize(plan.owner.size());
  const NodeId n = net.node_count();
  for (NodeId v = 0; v < n; ++v) {
    auto& shard = plan.shards[plan.owner[static_cast<std::size_t>(v)]];
    plan.local_index[static_cast<std::size_t>(v)] =
        static_cast<std::uint32_t>(shard.nodes.size());
    shard.nodes.push_back(v);
  }
  repair_shard_plan_roles(plan, net);
  return plan;
}

void repair_shard_plan_roles(ShardPlan& plan, const SdNetwork& net) {
  for (auto& shard : plan.shards) {
    shard.sources.clear();
    shard.sinks.clear();
  }
  // Role lists inherit ascending order from the role indices of the
  // network, which are ascending by construction.
  for (const NodeId v : net.sources()) {
    plan.shards[plan.owner[static_cast<std::size_t>(v)]].sources.push_back(v);
  }
  for (const NodeId v : net.sinks()) {
    plan.shards[plan.owner[static_cast<std::size_t>(v)]].sinks.push_back(v);
  }
}

}  // namespace lgg::core
