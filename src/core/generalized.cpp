#include "core/generalized.hpp"

#include <algorithm>

namespace lgg::core {

std::string_view to_string(DeclarationPolicy policy) {
  switch (policy) {
    case DeclarationPolicy::kTruthful: return "truthful";
    case DeclarationPolicy::kDeclareR: return "declare_r";
    case DeclarationPolicy::kDeclareZero: return "declare_zero";
    case DeclarationPolicy::kRandom: return "random";
  }
  return "unknown";
}

PacketCount declared_queue(const NodeSpec& spec, PacketCount q,
                           DeclarationPolicy policy, Rng& rng) {
  LGG_REQUIRE(q >= 0, "declared_queue: negative queue");
  // Above the retention threshold the node must tell the truth; classical
  // nodes (R = 0) therefore always do.
  if (q > spec.retention) return q;
  switch (policy) {
    case DeclarationPolicy::kTruthful:
      return q;
    case DeclarationPolicy::kDeclareR:
      return spec.retention;
    case DeclarationPolicy::kDeclareZero:
      return 0;
    case DeclarationPolicy::kRandom:
      return rng.uniform_int(0, spec.retention);
  }
  return q;
}

std::string_view to_string(ExtractionPolicy policy) {
  switch (policy) {
    case ExtractionPolicy::kEager: return "eager";
    case ExtractionPolicy::kRetentive: return "retentive";
    case ExtractionPolicy::kRandom: return "random";
  }
  return "unknown";
}

ExtractionRange extraction_range(const NodeSpec& spec, PacketCount q) {
  LGG_REQUIRE(q >= 0, "extraction_range: negative queue");
  const PacketCount upper = std::min<PacketCount>(spec.out, q);
  PacketCount lower = 0;
  if (q > spec.retention) {
    lower = std::min<PacketCount>(spec.out, q - spec.retention);
  }
  return {lower, upper};
}

PacketCount extraction_amount(const NodeSpec& spec, PacketCount q,
                              ExtractionPolicy policy, Rng& rng) {
  const ExtractionRange range = extraction_range(spec, q);
  switch (policy) {
    case ExtractionPolicy::kEager:
      return range.upper;
    case ExtractionPolicy::kRetentive:
      return range.lower;
    case ExtractionPolicy::kRandom:
      return rng.uniform_int(range.lower, range.upper);
  }
  return range.upper;
}

}  // namespace lgg::core
