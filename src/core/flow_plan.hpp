// Maximum-flow route plan over an S-D-network: the E_t^Φ of Equation 4.
//
// Solves a max flow on the extended graph G* restricted to active edges,
// cancels the opposite-direction artifacts of the undirected encoding, and
// returns the unit s*→d* paths as hop sequences inside G.  Used by the
// flow-routing baseline (the paper's "optimal method") and by the Lyapunov
// auditor's Equation-4 telescope check.
#pragma once

#include <vector>

#include "core/protocol.hpp"

namespace lgg::core {

struct FlowPlan {
  /// One entry per unit flow path; each is the ordered hops through G
  /// (paths s* -> v -> d* with no internal hop are omitted).
  std::vector<std::vector<Transmission>> paths;
  /// The flow value the plan realizes (== arrival rate iff feasible).
  Cap value = 0;
};

/// Builds the plan for `net` using only edges active in `mask`
/// (nullptr = all edges).
FlowPlan build_flow_plan(const SdNetwork& net,
                         const graph::EdgeMask* mask = nullptr);

}  // namespace lgg::core
