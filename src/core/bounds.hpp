// The explicit constants of the paper's proofs.
//
// Unsaturated S-D-networks (Section III):
//   Property 1:  P_{t+1} − P_t <= 5 n Δ²
//   Property 2:  with Y = (5 n f* / ε + 3 n) Δ²,
//                P_t > n Y²  ⇒  P_{t+1} − P_t < −5 n Δ²
//   Lemma 1:     P_t <= n Y² + 5 n Δ² for all t
//
// Unsaturated R-generalized networks (Properties 3–6):
//   growth bound A = 2|S∪D|(R + outmax)·outmax + Δ²(3n − 2|S∪D|)
//                    + 4|S∪D|ΔR
//   drift: for Y large enough, P_t > n Y² ⇒ P_{t+1} − P_t < −A
//
// The ε fed in comes from the parametric feasibility search and is a lower
// bound on the true margin, which makes every bound here a valid (merely
// looser) upper bound.
#pragma once

#include "core/sd_network.hpp"
#include "flow/feasibility.hpp"

namespace lgg::core {

struct UnsaturatedBounds {
  NodeId n = 0;
  int delta = 0;      ///< Δ, max degree with multiplicity
  Cap fstar = 0;      ///< f*
  double epsilon = 0; ///< verified margin
  double growth = 0;  ///< 5 n Δ² (Property 1)
  double y = 0;       ///< Y of Property 2
  double state = 0;   ///< n Y² + 5 n Δ² (Lemma 1)
};

/// Requires report.unsaturated (ε > 0).
UnsaturatedBounds unsaturated_bounds(const SdNetwork& net,
                                     const flow::FeasibilityReport& report);

struct GeneralizedBounds {
  NodeId n = 0;
  int delta = 0;
  Cap special = 0;   ///< |S ∪ D|
  Cap out_max = 0;   ///< max out(v) over S ∪ D
  Cap retention = 0; ///< R
  double growth = 0; ///< Property 3's A

  /// Property 6's first-case threshold: if some generalized node's queue
  /// exceeds this, δ_t is already strictly negative.  Requires ε > 0.
  [[nodiscard]] double drift_threshold(double epsilon) const;
};

GeneralizedBounds generalized_bounds(const SdNetwork& net);

}  // namespace lgg::core
