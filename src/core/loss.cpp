#include "core/loss.hpp"

#include <algorithm>
#include <numeric>

#include "common/binio.hpp"
#include "common/require.hpp"

namespace lgg::core {

BernoulliLoss::BernoulliLoss(double p) : p_(p) {
  LGG_REQUIRE(p >= 0.0 && p <= 1.0, "BernoulliLoss: p in [0,1]");
}

void BernoulliLoss::mark_losses(const StepView&,
                                std::span<const Transmission> txs, Rng& rng,
                                std::vector<char>& lost) {
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (rng.bernoulli(p_)) lost[i] = 1;
  }
}

PeriodicLoss::PeriodicLoss(std::int64_t period, std::int64_t phase)
    : period_(period), counter_(phase % std::max<std::int64_t>(period, 1)) {
  LGG_REQUIRE(period >= 1, "PeriodicLoss: period >= 1");
}

void PeriodicLoss::mark_losses(const StepView&,
                               std::span<const Transmission> txs, Rng&,
                               std::vector<char>& lost) {
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (++counter_ >= period_) {
      counter_ = 0;
      lost[i] = 1;
    }
  }
}

void PeriodicLoss::save_state(std::ostream& os) const {
  binio::write_i64(os, counter_);
}

void PeriodicLoss::load_state(std::istream& is) {
  counter_ = binio::read_i64(is);
}

TargetedCutLoss::TargetedCutLoss(std::vector<char> side_a,
                                 int budget_per_step)
    : side_a_(std::move(side_a)), budget_(budget_per_step) {
  LGG_REQUIRE(budget_ >= 0, "TargetedCutLoss: budget >= 0");
}

void TargetedCutLoss::mark_losses(const StepView&,
                                  std::span<const Transmission> txs, Rng&,
                                  std::vector<char>& lost) {
  int remaining = budget_;
  for (std::size_t i = 0; i < txs.size() && remaining > 0; ++i) {
    const Transmission& tx = txs[i];
    const bool crossing =
        static_cast<std::size_t>(tx.from) < side_a_.size() &&
        static_cast<std::size_t>(tx.to) < side_a_.size() &&
        side_a_[static_cast<std::size_t>(tx.from)] &&
        !side_a_[static_cast<std::size_t>(tx.to)];
    if (crossing) {
      lost[i] = 1;
      --remaining;
    }
  }
}

MaxGradientLoss::MaxGradientLoss(int budget_per_step)
    : budget_(budget_per_step) {
  LGG_REQUIRE(budget_ >= 0, "MaxGradientLoss: budget >= 0");
}

void MaxGradientLoss::mark_losses(const StepView& view,
                                  std::span<const Transmission> txs, Rng&,
                                  std::vector<char>& lost) {
  if (budget_ <= 0 || txs.empty()) return;
  std::vector<std::size_t> order(txs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    const auto drop = [&](std::size_t i) {
      return view.queue[static_cast<std::size_t>(txs[i].from)] -
             view.queue[static_cast<std::size_t>(txs[i].to)];
    };
    return drop(a) > drop(b);
  });
  const std::size_t kill =
      std::min<std::size_t>(static_cast<std::size_t>(budget_), txs.size());
  for (std::size_t i = 0; i < kill; ++i) lost[order[i]] = 1;
}

}  // namespace lgg::core
