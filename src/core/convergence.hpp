// Convergence-time measurement.
//
// Lemma 1's constants suggest the transient scales with Y ∝ 1/ε: the
// smaller the feasibility margin, the taller the gradient staircase LGG
// must build before deliveries match arrivals.  settle_time() measures
// when the P_t trajectory enters (and stays inside) a band around its own
// steady plateau, making that scaling measurable (bench E21).
#pragma once

#include <optional>
#include <span>

#include "common/types.hpp"

namespace lgg::core {

struct SettleOptions {
  /// Fraction of the trajectory treated as the steady plateau reference.
  double plateau_fraction = 0.25;
  /// Band half-width around the plateau mean, relative (e.g. 0.25 = ±25%)
  /// plus a small absolute slack for near-zero plateaus.
  double band = 0.25;
  double absolute_slack = 4.0;
};

/// First step t such that the trajectory stays inside the plateau band for
/// all t' >= t.  nullopt if it never settles (e.g. diverging runs).
std::optional<TimeStep> settle_time(std::span<const double> network_state,
                                    const SettleOptions& options = {});

/// Plateau mean over the trailing plateau_fraction window.
double plateau_level(std::span<const double> network_state,
                     const SettleOptions& options = {});

}  // namespace lgg::core
