// Serialization for S-D-networks and recorded trajectories.
//
// Network format ("sdnet"), a superset of the graph format:
//   nodes <n>
//   edge <u> <v>
//   role <v> <in> <out> <retention>     (one line per non-relay node)
//
// Trajectory export writes one CSV row per step with the stability metrics
// and step statistics — directly loadable by pandas/gnuplot.
#pragma once

#include <iosfwd>
#include <string>

#include "core/metrics.hpp"
#include "core/sd_network.hpp"

namespace lgg::core {

void write_network(std::ostream& os, const SdNetwork& net);
std::string to_string(const SdNetwork& net);

/// Throws graph::ParseError on malformed input.
SdNetwork read_network(std::istream& is);
SdNetwork network_from_string(const std::string& text);

/// CSV with header: t,network_state,total_packets,max_queue,injected,
/// proposed,suppressed,conflicted,sent,lost,delivered,extracted,crash_wiped
void write_trajectory_csv(std::ostream& os, const MetricsRecorder& recorder);

}  // namespace lgg::core
