// R-generalized node behaviour (Definitions 5–7):
//
//   (ii) declaration — a node v with retention R may lie to its neighbours
//        about its queue: when q > R it must declare q, when q <= R it may
//        declare any value <= R.
//   (i)  extraction  — v extracts out_t(v) packets per step with
//        0 <= out_t(v) <= min(out(v), q), and when q > R additionally
//        out_t(v) >= min(out(v), q − R).
//
// Classical nodes are the retention-0 case: declaration is forced truthful
// and extraction is forced to exactly min(out, q).
#pragma once

#include <string_view>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/sd_network.hpp"

namespace lgg::core {

/// How an R-generalized node reports its queue when q <= R.
enum class DeclarationPolicy {
  kTruthful,      ///< always declare the true queue (legal: q <= R)
  kDeclareR,      ///< declare exactly R — the maximal legal lie
  kDeclareZero,   ///< declare 0 — the minimal legal lie
  kRandom,        ///< declare uniform in [0, R]
};

[[nodiscard]] std::string_view to_string(DeclarationPolicy policy);

/// The declared queue length q'_t(v) for a node with the given spec.
PacketCount declared_queue(const NodeSpec& spec, PacketCount q,
                           DeclarationPolicy policy, Rng& rng);

/// How much slack a generalized node exercises when extracting.
enum class ExtractionPolicy {
  kEager,      ///< extract min(out, q) — classical behaviour
  kRetentive,  ///< extract min(out, max(q − R, 0)) — keep R packets back
  kRandom,     ///< uniform between the legal lower and upper bound
};

[[nodiscard]] std::string_view to_string(ExtractionPolicy policy);

/// Legal extraction interval for the node: [lower, upper].
struct ExtractionRange {
  PacketCount lower;
  PacketCount upper;
};

ExtractionRange extraction_range(const NodeSpec& spec, PacketCount q);

/// The number of packets extracted this step under the policy.
PacketCount extraction_amount(const NodeSpec& spec, PacketCount q,
                              ExtractionPolicy policy, Rng& rng);

}  // namespace lgg::core
