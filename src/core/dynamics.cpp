#include "core/dynamics.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace lgg::core {

RandomChurn::RandomChurn(double p_off, double p_on)
    : p_off_(p_off), p_on_(p_on) {
  LGG_REQUIRE(p_off >= 0.0 && p_off <= 1.0, "RandomChurn: p_off in [0,1]");
  LGG_REQUIRE(p_on >= 0.0 && p_on <= 1.0, "RandomChurn: p_on in [0,1]");
}

bool RandomChurn::evolve(TimeStep, const SdNetwork&, graph::EdgeMask& mask,
                         Rng& rng) {
  bool changed = false;
  for (EdgeId e = 0; e < mask.size(); ++e) {
    if (mask.active(e)) {
      if (rng.bernoulli(p_off_)) {
        mask.set_active(e, false);
        changed = true;
      }
    } else if (rng.bernoulli(p_on_)) {
      mask.set_active(e, true);
      changed = true;
    }
  }
  return changed;
}

ProtectedChurn::ProtectedChurn(std::vector<EdgeId> protected_edges,
                               double p_off, double p_on)
    : p_off_(p_off), p_on_(p_on) {
  LGG_REQUIRE(p_off >= 0.0 && p_off <= 1.0, "ProtectedChurn: p_off in [0,1]");
  LGG_REQUIRE(p_on >= 0.0 && p_on <= 1.0, "ProtectedChurn: p_on in [0,1]");
  EdgeId max_edge = -1;
  for (const EdgeId e : protected_edges) {
    LGG_REQUIRE(e >= 0, "ProtectedChurn: bad edge id");
    max_edge = std::max(max_edge, e);
  }
  protected_.assign(static_cast<std::size_t>(max_edge + 1), 0);
  for (const EdgeId e : protected_edges) {
    protected_[static_cast<std::size_t>(e)] = 1;
  }
}

bool ProtectedChurn::evolve(TimeStep, const SdNetwork&,
                            graph::EdgeMask& mask, Rng& rng) {
  bool changed = false;
  for (EdgeId e = 0; e < mask.size(); ++e) {
    const bool is_protected =
        static_cast<std::size_t>(e) < protected_.size() &&
        protected_[static_cast<std::size_t>(e)];
    if (is_protected) {
      if (!mask.active(e)) {
        mask.set_active(e, true);
        changed = true;
      }
      continue;
    }
    if (mask.active(e)) {
      if (rng.bernoulli(p_off_)) {
        mask.set_active(e, false);
        changed = true;
      }
    } else if (rng.bernoulli(p_on_)) {
      mask.set_active(e, true);
      changed = true;
    }
  }
  return changed;
}

PeriodicSwitch::PeriodicSwitch(graph::EdgeMask mask_a, graph::EdgeMask mask_b,
                               TimeStep period)
    : mask_a_(std::move(mask_a)), mask_b_(std::move(mask_b)),
      period_(period) {
  LGG_REQUIRE(period >= 1, "PeriodicSwitch: period >= 1");
  LGG_REQUIRE(mask_a_.size() == mask_b_.size(),
              "PeriodicSwitch: mask sizes differ");
}

bool PeriodicSwitch::evolve(TimeStep t, const SdNetwork&,
                            graph::EdgeMask& mask, Rng&) {
  LGG_REQUIRE(mask.size() == mask_a_.size(),
              "PeriodicSwitch: mask size mismatch with network");
  const graph::EdgeMask& want = ((t / period_) % 2 == 0) ? mask_a_ : mask_b_;
  bool changed = false;
  for (EdgeId e = 0; e < mask.size(); ++e) {
    if (mask.active(e) != want.active(e)) {
      mask.set_active(e, want.active(e));
      changed = true;
    }
  }
  return changed;
}

}  // namespace lgg::core
