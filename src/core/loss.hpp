// Packet-loss models.
//
// The model of Section II allows any transmission to fail silently: the
// packet leaves the sender's queue and never arrives.  Stability must hold
// under *every* loss pattern (that is the content of Conjecture 1), so
// besides i.i.d. losses we implement targeted adversaries that concentrate
// a per-step loss budget where it hurts most.
#pragma once

#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/protocol.hpp"

namespace lgg::core {

class LossModel {
 public:
  virtual ~LossModel() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Marks lost[i] = 1 for every transmission that fails this step.
  /// `lost` arrives zero-initialized with size txs.size().
  virtual void mark_losses(const StepView& view,
                           std::span<const Transmission> txs, Rng& rng,
                           std::vector<char>& lost) = 0;

  /// Checkpoint hooks (core/checkpoint.hpp): serialize/restore cross-step
  /// internal state (e.g. PeriodicLoss's transmission counter).
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}
};

/// The lossless channel.
class NoLoss final : public LossModel {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  void mark_losses(const StepView&, std::span<const Transmission>, Rng&,
                   std::vector<char>&) override {}
};

/// Each transmission independently fails with probability p.
class BernoulliLoss final : public LossModel {
 public:
  explicit BernoulliLoss(double p);
  [[nodiscard]] std::string_view name() const override { return "bernoulli"; }
  void mark_losses(const StepView&, std::span<const Transmission>, Rng& rng,
                   std::vector<char>& lost) override;

 private:
  double p_;
};

/// Deterministic pattern: every `period`-th transmission (counting across
/// the whole run, offset by `phase`) is lost.
class PeriodicLoss final : public LossModel {
 public:
  explicit PeriodicLoss(std::int64_t period, std::int64_t phase = 0);
  [[nodiscard]] std::string_view name() const override { return "periodic"; }
  void mark_losses(const StepView&, std::span<const Transmission>, Rng&,
                   std::vector<char>& lost) override;

  // The run-wide transmission counter persists across steps.
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  std::int64_t period_;
  std::int64_t counter_;
};

/// Adversary: loses up to `budget` transmissions per step, preferring those
/// that cross from the given node set A into its complement (e.g. a minimum
/// cut's source side) — the pattern that starves the downstream part.
class TargetedCutLoss final : public LossModel {
 public:
  TargetedCutLoss(std::vector<char> side_a, int budget_per_step);
  [[nodiscard]] std::string_view name() const override { return "cut_adversary"; }
  void mark_losses(const StepView&, std::span<const Transmission>, Rng&,
                   std::vector<char>& lost) override;

 private:
  std::vector<char> side_a_;
  int budget_;
};

/// Adversary: loses the `budget` transmissions with the largest queue drop
/// q(from) − q(to) — destroys the most useful gradient moves first.
class MaxGradientLoss final : public LossModel {
 public:
  explicit MaxGradientLoss(int budget_per_step);
  [[nodiscard]] std::string_view name() const override {
    return "gradient_adversary";
  }
  void mark_losses(const StepView& view, std::span<const Transmission> txs,
                   Rng&, std::vector<char>& lost) override;

 private:
  int budget_;
};

}  // namespace lgg::core
