#include "core/burst_condition.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace lgg::core {

std::vector<PacketCount> forced_backlog(std::span<const PacketCount> arrivals,
                                        Cap fstar) {
  LGG_REQUIRE(fstar >= 0, "forced_backlog: fstar >= 0");
  std::vector<PacketCount> r;
  r.reserve(arrivals.size() + 1);
  r.push_back(0);
  PacketCount current = 0;
  for (const PacketCount a : arrivals) {
    LGG_REQUIRE(a >= 0, "forced_backlog: negative arrival");
    current = std::max<PacketCount>(0, current + a - fstar);
    r.push_back(current);
  }
  return r;
}

PacketCount max_interval_excess(std::span<const PacketCount> arrivals,
                                Cap fstar) {
  const auto backlog = forced_backlog(arrivals, fstar);
  return *std::max_element(backlog.begin(), backlog.end());
}

BurstVerdict analyze_periodic_trace(std::span<const PacketCount> one_period,
                                    Cap fstar) {
  LGG_REQUIRE(!one_period.empty(), "analyze_periodic_trace: empty period");
  BurstVerdict verdict;
  // Two periods expose every wrap-around interval of a periodic trace.
  std::vector<PacketCount> doubled(one_period.begin(), one_period.end());
  doubled.insert(doubled.end(), one_period.begin(), one_period.end());
  verdict.max_excess = max_interval_excess(doubled, fstar);
  const auto backlog = forced_backlog(one_period, fstar);
  verdict.residual_backlog = backlog.back();
  Cap total = 0;
  for (const PacketCount a : one_period) total += a;
  verdict.per_period_drift =
      total - static_cast<Cap>(one_period.size()) * fstar;
  verdict.compensated = verdict.per_period_drift <= 0;
  return verdict;
}

}  // namespace lgg::core
