// Dynamic topologies (Conjecture 4): the active edge set may change between
// steps.  Dynamics mutate the simulator's EdgeMask at the start of a step.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/sd_network.hpp"

namespace lgg::core {

class TopologyDynamics {
 public:
  virtual ~TopologyDynamics() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Mutates `mask` for step t.  Returns true iff the mask changed.
  virtual bool evolve(TimeStep t, const SdNetwork& net,
                      graph::EdgeMask& mask, Rng& rng) = 0;

  /// Checkpoint hooks (core/checkpoint.hpp).  The mask itself is saved by
  /// the simulator; the shipped dynamics carry no other cross-step state.
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}
};

/// The static network of the base model.
class StaticTopology final : public TopologyDynamics {
 public:
  [[nodiscard]] std::string_view name() const override { return "static"; }
  bool evolve(TimeStep, const SdNetwork&, graph::EdgeMask&, Rng&) override {
    return false;
  }
};

/// Memoryless churn: every active edge fails with probability p_off, every
/// inactive edge recovers with probability p_on.
class RandomChurn final : public TopologyDynamics {
 public:
  RandomChurn(double p_off, double p_on);
  [[nodiscard]] std::string_view name() const override { return "churn"; }
  bool evolve(TimeStep, const SdNetwork&, graph::EdgeMask& mask,
              Rng& rng) override;

 private:
  double p_off_;
  double p_on_;
};

/// Churn that never touches a protected edge set (e.g. the edges carrying a
/// feasible flow), so feasibility is preserved at every instant — the
/// precondition of Conjecture 4.
class ProtectedChurn final : public TopologyDynamics {
 public:
  ProtectedChurn(std::vector<EdgeId> protected_edges, double p_off,
                 double p_on);
  [[nodiscard]] std::string_view name() const override {
    return "protected_churn";
  }
  bool evolve(TimeStep, const SdNetwork&, graph::EdgeMask& mask,
              Rng& rng) override;

 private:
  std::vector<char> protected_;
  double p_off_;
  double p_on_;
  bool protected_sized_ = false;
};

/// Alternates between two fixed masks every `period` steps.
class PeriodicSwitch final : public TopologyDynamics {
 public:
  PeriodicSwitch(graph::EdgeMask mask_a, graph::EdgeMask mask_b,
                 TimeStep period);
  [[nodiscard]] std::string_view name() const override {
    return "periodic_switch";
  }
  bool evolve(TimeStep t, const SdNetwork&, graph::EdgeMask& mask,
              Rng&) override;

 private:
  graph::EdgeMask mask_a_;
  graph::EdgeMask mask_b_;
  TimeStep period_;
};

}  // namespace lgg::core
