// Empirical stability-region estimation.
//
// The stability region of a protocol (Tassiulas–Ephremides sense, the
// object Theorem 1 characterizes for LGG) is the set of arrival-rate
// scalings under which the network state stays bounded.  For a
// one-parameter family load ∈ (0, λ_max], the region is an interval
// [0, λ*), and λ* is found by bisection over replicated seeded runs.
#pragma once

#include <functional>

#include "core/stability.hpp"

namespace lgg::core {

struct RegionOptions {
  double lo = 0.05;        ///< known-stable starting load
  double hi = 2.0;         ///< known-unstable ceiling load
  double tolerance = 1.0 / 64.0;
  int replicates = 3;      ///< seeded runs per probe; majority decides
  std::uint64_t seed = 0xbeef;
};

/// Verdict of one run of the system under `load` with `seed`.
using LoadProbe = std::function<Verdict(double load, std::uint64_t seed)>;

/// True iff the majority of replicated probes at `load` are not diverging.
bool load_is_stable(const LoadProbe& probe, double load,
                    const RegionOptions& options);

/// Largest load (within tolerance) whose majority verdict is stable.
/// Requires the probe to be monotone in load (stable below, diverging
/// above), which holds for every system in this library.
double critical_load(const LoadProbe& probe, RegionOptions options = {});

}  // namespace lgg::core
