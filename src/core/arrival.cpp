#include "core/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "common/binio.hpp"
#include "common/require.hpp"

namespace lgg::core {

ScaledArrival::ScaledArrival(double factor) : factor_(factor) {
  LGG_REQUIRE(factor >= 0.0, "ScaledArrival: factor >= 0");
}

PacketCount ScaledArrival::packets(NodeId, Cap in_rate, TimeStep t, Rng&) {
  const double rate = factor_ * static_cast<double>(in_rate);
  const auto before = static_cast<PacketCount>(
      std::floor(static_cast<double>(t) * rate + 1e-9));
  const auto after = static_cast<PacketCount>(
      std::floor(static_cast<double>(t + 1) * rate + 1e-9));
  return after - before;
}

BernoulliArrival::BernoulliArrival(double p) : p_(p) {
  LGG_REQUIRE(p >= 0.0 && p <= 1.0, "BernoulliArrival: p in [0,1]");
}

PacketCount BernoulliArrival::packets(NodeId, Cap in_rate, TimeStep,
                                      Rng& rng) {
  PacketCount count = 0;
  for (Cap i = 0; i < in_rate; ++i) {
    if (rng.bernoulli(p_)) ++count;
  }
  return count;
}

UniformArrival::UniformArrival(double mean_factor)
    : mean_factor_(mean_factor) {
  LGG_REQUIRE(mean_factor >= 0.0, "UniformArrival: mean_factor >= 0");
}

PacketCount UniformArrival::packets(NodeId, Cap in_rate, TimeStep,
                                    Rng& rng) {
  // Uniform integer on [0, hi] has mean hi/2; pick hi = 2·mean.
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  const auto hi = static_cast<PacketCount>(std::llround(2.0 * mean));
  if (hi <= 0) return 0;
  return rng.uniform_int(0, hi);
}

PoissonArrival::PoissonArrival(double mean_factor)
    : mean_factor_(mean_factor) {
  LGG_REQUIRE(mean_factor >= 0.0, "PoissonArrival: mean_factor >= 0");
}

PacketCount PoissonArrival::packets(NodeId, Cap in_rate, TimeStep,
                                    Rng& rng) {
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  if (mean <= 0.0) return 0;
  return std::poisson_distribution<PacketCount>(mean)(rng.engine());
}

GeometricArrival::GeometricArrival(double mean_factor)
    : mean_factor_(mean_factor) {
  LGG_REQUIRE(mean_factor >= 0.0, "GeometricArrival: mean_factor >= 0");
}

PacketCount GeometricArrival::packets(NodeId, Cap in_rate, TimeStep,
                                      Rng& rng) {
  // Geometric with mean m has success probability 1/(1+m).
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  if (mean <= 0.0) return 0;
  return std::geometric_distribution<PacketCount>(1.0 / (1.0 + mean))(
      rng.engine());
}

BurstArrival::BurstArrival(double high_factor, double low_factor,
                           TimeStep burst_len, TimeStep period)
    : high_(high_factor),
      low_(low_factor),
      burst_len_(burst_len),
      period_(period) {
  LGG_REQUIRE(period >= 1, "BurstArrival: period >= 1");
  LGG_REQUIRE(burst_len >= 0 && burst_len <= period,
              "BurstArrival: 0 <= burst_len <= period");
  LGG_REQUIRE(high_factor >= 0.0 && low_factor >= 0.0,
              "BurstArrival: factors >= 0");
}

PacketCount BurstArrival::packets(NodeId, Cap in_rate, TimeStep t, Rng&) {
  const TimeStep phase = t % period_;
  const double factor = phase < burst_len_ ? high_ : low_;
  return static_cast<PacketCount>(
      std::llround(factor * static_cast<double>(in_rate)));
}

double BurstArrival::average_factor() const {
  return (high_ * static_cast<double>(burst_len_) +
          low_ * static_cast<double>(period_ - burst_len_)) /
         static_cast<double>(period_);
}

TokenBucketArrival::TokenBucketArrival(double r, double burst_cap,
                                       TimeStep hoard_period)
    : r_(r), burst_cap_(burst_cap), hoard_period_(hoard_period) {
  LGG_REQUIRE(r >= 0.0, "TokenBucketArrival: r >= 0");
  LGG_REQUIRE(burst_cap >= 0.0, "TokenBucketArrival: burst_cap >= 0");
  LGG_REQUIRE(hoard_period >= 1, "TokenBucketArrival: hoard_period >= 1");
}

PacketCount TokenBucketArrival::packets(NodeId v, Cap in_rate, TimeStep t,
                                        Rng&) {
  double& tokens = tokens_[v];
  tokens += r_ * static_cast<double>(in_rate);
  tokens = std::min(tokens, burst_cap_ + r_ * static_cast<double>(in_rate));
  if ((t + 1) % hoard_period_ != 0) return 0;  // hoard
  const auto dump = static_cast<PacketCount>(tokens);
  tokens -= static_cast<double>(dump);
  return dump;
}

void TokenBucketArrival::save_state(std::ostream& os) const {
  binio::write_u32(os, static_cast<std::uint32_t>(tokens_.size()));
  for (const auto& [node, tokens] : tokens_) {
    binio::write_i64(os, node);
    binio::write_f64(os, tokens);
  }
}

void TokenBucketArrival::load_state(std::istream& is) {
  tokens_.clear();
  const std::uint32_t count = binio::read_u32(is);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto node = static_cast<NodeId>(binio::read_i64(is));
    tokens_[node] = binio::read_f64(is);
  }
}

TraceArrival::TraceArrival(std::map<NodeId, std::vector<PacketCount>> trace)
    : trace_(std::move(trace)) {
  for (const auto& [node, seq] : trace_) {
    (void)node;
    for (const PacketCount p : seq) {
      LGG_REQUIRE(p >= 0, "TraceArrival: negative injection in trace");
    }
  }
}

PacketCount TraceArrival::packets(NodeId v, Cap, TimeStep t, Rng&) {
  const auto it = trace_.find(v);
  if (it == trace_.end()) return 0;
  const auto& seq = it->second;
  if (t < 0 || static_cast<std::size_t>(t) >= seq.size()) return 0;
  return seq[static_cast<std::size_t>(t)];
}

}  // namespace lgg::core
