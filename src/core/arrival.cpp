#include "core/arrival.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/binio.hpp"
#include "common/require.hpp"
#include "core/sd_network.hpp"

namespace lgg::core {

namespace {

/// Flat-store sentinel: a node the process never touched.  Buckets can
/// never go negative in operation, so the value is unambiguous.
inline constexpr std::int64_t kUntouched = -1;

/// Shared load_state hardening for the flat sparse (index, value) blobs of
/// the stateful processes: bounded node count, in-range strictly-ascending
/// indices, and hard failure (std::runtime_error, matching binio's own
/// truncation behavior) instead of silent partial state.
inline constexpr std::uint32_t kMaxStateNodes = 1u << 26;

[[noreturn]] void bad_state(const char* process, const char* what) {
  throw std::runtime_error(std::string(process) + " state: " + what);
}

struct SparseHeader {
  std::uint32_t size = 0;
  std::uint32_t entries = 0;
};

SparseHeader read_sparse_header(std::istream& is, const char* process) {
  SparseHeader h;
  h.size = binio::read_u32(is);
  if (h.size > kMaxStateNodes) bad_state(process, "implausible node count");
  h.entries = binio::read_u32(is);
  if (h.entries > h.size) bad_state(process, "more entries than nodes");
  return h;
}

std::uint32_t read_sparse_index(std::istream& is, const char* process,
                                std::uint32_t size, std::int64_t prev) {
  const std::uint32_t idx = binio::read_u32(is);
  if (idx >= size) bad_state(process, "entry index out of range");
  if (static_cast<std::int64_t>(idx) <= prev) {
    bad_state(process, "entry indices not strictly ascending");
  }
  return idx;
}

}  // namespace

namespace envelope {

std::int64_t to_units(double value) {
  // 10^12 packets of allowance is far beyond any experiment; the clamp
  // keeps cap + per-step refill products well inside int64.
  constexpr double kMaxPackets = 1.0e12;
  const double clamped = std::min(value, kMaxPackets);
  return static_cast<std::int64_t>(
      std::floor(clamped * static_cast<double>(kTokenScale)));
}

}  // namespace envelope

ScaledArrival::ScaledArrival(double factor) : factor_(factor) {
  LGG_REQUIRE(std::isfinite(factor) && factor >= 0.0,
              "ScaledArrival: factor finite and >= 0");
}

PacketCount ScaledArrival::packets(NodeId, Cap in_rate, TimeStep t, Rng&) {
  const double rate = factor_ * static_cast<double>(in_rate);
  const auto before = static_cast<PacketCount>(
      std::floor(static_cast<double>(t) * rate + 1e-9));
  const auto after = static_cast<PacketCount>(
      std::floor(static_cast<double>(t + 1) * rate + 1e-9));
  return after - before;
}

BernoulliArrival::BernoulliArrival(double p) : p_(p) {
  LGG_REQUIRE(std::isfinite(p) && p >= 0.0 && p <= 1.0,
              "BernoulliArrival: p in [0,1]");
}

PacketCount BernoulliArrival::packets(NodeId, Cap in_rate, TimeStep,
                                      Rng& rng) {
  PacketCount count = 0;
  for (Cap i = 0; i < in_rate; ++i) {
    if (rng.bernoulli(p_)) ++count;
  }
  return count;
}

UniformArrival::UniformArrival(double mean_factor)
    : mean_factor_(mean_factor) {
  LGG_REQUIRE(std::isfinite(mean_factor) && mean_factor >= 0.0,
              "UniformArrival: mean_factor finite and >= 0");
}

PacketCount UniformArrival::packets(NodeId, Cap in_rate, TimeStep,
                                    Rng& rng) {
  // Uniform integer on [0, hi] has mean hi/2; pick hi = 2·mean.
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  const auto hi = static_cast<PacketCount>(std::llround(2.0 * mean));
  if (hi <= 0) return 0;
  return rng.uniform_int(0, hi);
}

PoissonArrival::PoissonArrival(double mean_factor)
    : mean_factor_(mean_factor) {
  LGG_REQUIRE(std::isfinite(mean_factor) && mean_factor >= 0.0,
              "PoissonArrival: mean_factor finite and >= 0");
}

PacketCount PoissonArrival::packets(NodeId, Cap in_rate, TimeStep,
                                    Rng& rng) {
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  if (mean <= 0.0) return 0;
  return std::poisson_distribution<PacketCount>(mean)(rng.engine());
}

GeometricArrival::GeometricArrival(double mean_factor)
    : mean_factor_(mean_factor) {
  LGG_REQUIRE(std::isfinite(mean_factor) && mean_factor >= 0.0,
              "GeometricArrival: mean_factor finite and >= 0");
}

PacketCount GeometricArrival::packets(NodeId, Cap in_rate, TimeStep,
                                      Rng& rng) {
  // Geometric with mean m has success probability 1/(1+m).
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  if (mean <= 0.0) return 0;
  return std::geometric_distribution<PacketCount>(1.0 / (1.0 + mean))(
      rng.engine());
}

ParetoArrival::ParetoArrival(double alpha, double mean_factor)
    : alpha_(alpha), mean_factor_(mean_factor) {
  LGG_REQUIRE(std::isfinite(alpha) && alpha > 1.0,
              "ParetoArrival: alpha finite and > 1 (finite mean)");
  LGG_REQUIRE(std::isfinite(mean_factor) && mean_factor >= 0.0,
              "ParetoArrival: mean_factor finite and >= 0");
}

PacketCount ParetoArrival::packets(NodeId, Cap in_rate, TimeStep,
                                   Rng& rng) {
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  if (mean <= 0.0) return 0;
  // Lomax (shifted Pareto) with tail index alpha has mean scale/(alpha−1);
  // invert the CDF on one addressed uniform draw.
  const double scale = mean * (alpha_ - 1.0);
  const double u = rng.uniform01();
  const double x = scale * (std::pow(1.0 - u, -1.0 / alpha_) - 1.0);
  constexpr double kTailClamp = 1.0e9;
  return static_cast<PacketCount>(std::floor(std::min(x, kTailClamp)));
}

DiurnalArrival::DiurnalArrival(double mean_factor, double amp,
                               TimeStep period)
    : mean_factor_(mean_factor), amp_(amp), period_(period) {
  LGG_REQUIRE(std::isfinite(mean_factor) && mean_factor >= 0.0,
              "DiurnalArrival: mean_factor finite and >= 0");
  LGG_REQUIRE(std::isfinite(amp) && amp >= 0.0 && amp <= 1.0,
              "DiurnalArrival: amp in [0,1] (rate stays non-negative)");
  LGG_REQUIRE(period >= 1, "DiurnalArrival: period >= 1");
}

double DiurnalArrival::cumulative(Cap in_rate, TimeStep t) const {
  // ∫ mean·in·(1 + amp·sin(2πu/period)) du from 0 to t, closed form; the
  // integrand is non-negative (amp <= 1), so the cumulative is monotone
  // and the floor-difference below can never go negative.
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double mean = mean_factor_ * static_cast<double>(in_rate);
  const double omega = kTwoPi / static_cast<double>(period_);
  const double td = static_cast<double>(t);
  return mean * (td - amp_ / omega * (std::cos(omega * td) - 1.0));
}

PacketCount DiurnalArrival::packets(NodeId, Cap in_rate, TimeStep t, Rng&) {
  const auto before = static_cast<PacketCount>(
      std::floor(cumulative(in_rate, t) + 1e-9));
  const auto after = static_cast<PacketCount>(
      std::floor(cumulative(in_rate, t + 1) + 1e-9));
  return after - before;
}

BurstArrival::BurstArrival(double high_factor, double low_factor,
                           TimeStep burst_len, TimeStep period)
    : high_(high_factor),
      low_(low_factor),
      burst_len_(burst_len),
      period_(period) {
  LGG_REQUIRE(period >= 1, "BurstArrival: period >= 1");
  LGG_REQUIRE(burst_len >= 0 && burst_len <= period,
              "BurstArrival: 0 <= burst_len <= period");
  LGG_REQUIRE(std::isfinite(high_factor) && std::isfinite(low_factor) &&
                  high_factor >= 0.0 && low_factor >= 0.0,
              "BurstArrival: factors finite and >= 0");
}

PacketCount BurstArrival::packets(NodeId, Cap in_rate, TimeStep t, Rng&) {
  const TimeStep phase = t % period_;
  const double factor = phase < burst_len_ ? high_ : low_;
  return static_cast<PacketCount>(
      std::llround(factor * static_cast<double>(in_rate)));
}

double BurstArrival::average_factor() const {
  return (high_ * static_cast<double>(burst_len_) +
          low_ * static_cast<double>(period_ - burst_len_)) /
         static_cast<double>(period_);
}

LeakyBucketArrival::LeakyBucketArrival(double rho, double sigma)
    : rho_(rho), sigma_(sigma) {
  LGG_REQUIRE(std::isfinite(rho) && rho >= 0.0,
              "LeakyBucketArrival: rho finite and >= 0");
  LGG_REQUIRE(std::isfinite(sigma) && sigma >= 0.0,
              "LeakyBucketArrival: sigma finite and >= 0");
}

void LeakyBucketArrival::begin_step(const ArrivalContext& ctx) {
  if (ctx.net == nullptr) return;
  const auto n = static_cast<std::size_t>(ctx.net->node_count());
  if (bucket_.size() < n) bucket_.resize(n, kUntouched);
}

PacketCount LeakyBucketArrival::packets(NodeId v, Cap in_rate, TimeStep,
                                        Rng&) {
  // Lazy growth covers direct (simulator-less) use; under a simulator the
  // vector is presized by begin_step, so distinct nodes touch disjoint
  // slots and packets() is safe to run shard-parallel.
  if (static_cast<std::size_t>(v) >= bucket_.size()) {
    bucket_.resize(static_cast<std::size_t>(v) + 1, kUntouched);
  }
  const std::int64_t cap = envelope::to_units(sigma_);
  const std::int64_t rate =
      envelope::to_units(rho_ * static_cast<double>(in_rate));
  std::int64_t b = bucket_[static_cast<std::size_t>(v)];
  if (b == kUntouched) b = cap;  // the sigma burst is available up front
  b = std::min(cap, b + rate);
  const std::int64_t dump = b / envelope::kTokenScale;
  b -= dump * envelope::kTokenScale;
  bucket_[static_cast<std::size_t>(v)] = b;
  return dump;
}

void LeakyBucketArrival::save_state(std::ostream& os) const {
  std::uint32_t entries = 0;
  for (const std::int64_t b : bucket_) {
    if (b != kUntouched) ++entries;
  }
  binio::write_u32(os, static_cast<std::uint32_t>(bucket_.size()));
  binio::write_u32(os, entries);
  for (std::size_t i = 0; i < bucket_.size(); ++i) {
    if (bucket_[i] == kUntouched) continue;
    binio::write_u32(os, static_cast<std::uint32_t>(i));
    binio::write_i64(os, bucket_[i]);
  }
}

void LeakyBucketArrival::load_state(std::istream& is) {
  const SparseHeader h = read_sparse_header(is, "leaky_bucket");
  bucket_.assign(h.size, kUntouched);
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < h.entries; ++i) {
    const std::uint32_t idx = read_sparse_index(is, "leaky_bucket", h.size,
                                                prev);
    const std::int64_t units = binio::read_i64(is);
    if (units < 0 || units > envelope::to_units(sigma_)) {
      bad_state("leaky_bucket", "token balance outside [0, sigma]");
    }
    bucket_[idx] = units;
    prev = idx;
  }
}

TokenBucketArrival::TokenBucketArrival(double r, double burst_cap,
                                       TimeStep hoard_period)
    : r_(r), burst_cap_(burst_cap), hoard_period_(hoard_period) {
  LGG_REQUIRE(std::isfinite(r) && r >= 0.0,
              "TokenBucketArrival: r finite and >= 0");
  LGG_REQUIRE(std::isfinite(burst_cap) && burst_cap >= 0.0,
              "TokenBucketArrival: burst_cap finite and >= 0");
  LGG_REQUIRE(hoard_period >= 1, "TokenBucketArrival: hoard_period >= 1");
}

void TokenBucketArrival::begin_step(const ArrivalContext& ctx) {
  if (ctx.net == nullptr) return;
  const auto n = static_cast<std::size_t>(ctx.net->node_count());
  if (tokens_.size() < n) tokens_.resize(n, 0.0);
}

PacketCount TokenBucketArrival::packets(NodeId v, Cap in_rate, TimeStep t,
                                        Rng&) {
  if (static_cast<std::size_t>(v) >= tokens_.size()) {
    tokens_.resize(static_cast<std::size_t>(v) + 1, 0.0);
  }
  double& tokens = tokens_[static_cast<std::size_t>(v)];
  tokens += r_ * static_cast<double>(in_rate);
  tokens = std::min(tokens, burst_cap_ + r_ * static_cast<double>(in_rate));
  if ((t + 1) % hoard_period_ != 0) return 0;  // hoard
  const auto dump = static_cast<PacketCount>(tokens);
  tokens -= static_cast<double>(dump);
  return dump;
}

void TokenBucketArrival::save_state(std::ostream& os) const {
  std::uint32_t entries = 0;
  for (const double t : tokens_) {
    if (t != 0.0) ++entries;
  }
  binio::write_u32(os, static_cast<std::uint32_t>(tokens_.size()));
  binio::write_u32(os, entries);
  for (std::size_t i = 0; i < tokens_.size(); ++i) {
    if (tokens_[i] == 0.0) continue;
    binio::write_u32(os, static_cast<std::uint32_t>(i));
    binio::write_f64(os, tokens_[i]);
  }
}

void TokenBucketArrival::load_state(std::istream& is) {
  const SparseHeader h = read_sparse_header(is, "token_bucket");
  tokens_.assign(h.size, 0.0);
  std::int64_t prev = -1;
  for (std::uint32_t i = 0; i < h.entries; ++i) {
    const std::uint32_t idx = read_sparse_index(is, "token_bucket", h.size,
                                                prev);
    const double balance = binio::read_f64(is);
    if (!std::isfinite(balance) || balance < 0.0) {
      bad_state("token_bucket", "non-finite or negative token balance");
    }
    tokens_[idx] = balance;
    prev = idx;
  }
}

TraceArrival::TraceArrival(std::map<NodeId, std::vector<PacketCount>> trace)
    : trace_(std::move(trace)) {
  for (const auto& [node, seq] : trace_) {
    (void)node;
    for (const PacketCount p : seq) {
      LGG_REQUIRE(p >= 0, "TraceArrival: negative injection in trace");
    }
  }
}

PacketCount TraceArrival::packets(NodeId v, Cap, TimeStep t, Rng&) {
  const auto it = trace_.find(v);
  if (it == trace_.end()) return 0;
  const auto& seq = it->second;
  if (t < 0 || static_cast<std::size_t>(t) >= seq.size()) return 0;
  return seq[static_cast<std::size_t>(t)];
}

}  // namespace lgg::core
