// The synchronous simulation engine of Section II.
//
// One step executes, in order:
//   1. topology dynamics mutate the active edge set           (Conj. 4)
//   2. sources inject packets per the arrival process         (in_t <= in)
//   3. nodes declare queue lengths                            (Def. 7 (ii))
//   4. the routing protocol proposes transmissions            (Algorithm 1)
//   5. the interference scheduler filters them                (Conj. 5)
//   6. link-conflict resolution (two opposite sends on one link can only be
//      scheduled when a node lies; the loser counts as a loss)
//   7. transmissions fire: each packet leaves its sender; the loss model
//      decides which ones arrive
//   8. sinks extract packets                                  (Def. 7 (i))
//
// Every stochastic choice draws from an *addressed* stream keyed by
// (seed, step, phase, node) — common/rng.hpp draw_key — so a run is a pure
// function of (network, components, seed) and, because no draw's value
// depends on how the node loops are grouped, the graph-partitioned shard
// engine (core/parallel_step.hpp, enable_sharding) reproduces the serial
// trajectory bitwise for every shard and thread count.
#pragma once

#include <memory>
#include <optional>

#include "core/admission.hpp"
#include "core/arrival.hpp"
#include "core/dynamics.hpp"
#include "core/faults.hpp"
#include "core/generalized.hpp"
#include "core/interference.hpp"
#include "core/loss.hpp"
#include "core/lgg_protocol.hpp"
#include "core/metrics.hpp"
#include "core/profiler.hpp"
#include "core/protocol.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"

namespace lgg::core {

namespace detail {
#if defined(__SIZEOF_INT128__)
/// Exact accumulator for Σq²: queue values are 63-bit, so squares need up
/// to 126 bits.  Unsigned so wraparound deltas stay well defined.
__extension__ typedef unsigned __int128 QuadAccum;
#else
typedef std::uint64_t QuadAccum;
#endif

[[nodiscard]] inline QuadAccum square(PacketCount q) {
  const auto u = static_cast<QuadAccum>(static_cast<std::uint64_t>(q));
  return u * u;
}
}  // namespace detail

/// Reusable per-edge scratch for link-conflict resolution.  Entries are
/// epoch-stamped: bumping `current` invalidates every slot at once, so a
/// resolution pass costs O(kept transmissions), not O(edges).
struct LinkConflictScratch {
  std::vector<std::uint32_t> stamp;      ///< epoch that last touched the edge
  std::vector<std::uint32_t> first_use;  ///< kept tx index for that epoch
  std::uint32_t current = 0;
};

/// Resolves both-directions-on-one-link conflicts over the kept
/// transmissions: the link carries the transmission realizing the larger
/// true queue drop (ties: lower from-id), the loser's keep flag is cleared.
/// Returns the number of transmissions dropped.  Exposed as a free function
/// so tests can fuzz it against a reference implementation.
std::size_t resolve_link_conflicts(std::span<const Transmission> txs,
                                   std::span<const PacketCount> queue,
                                   std::vector<char>& keep,
                                   LinkConflictScratch& scratch);

/// What "q_t(d)" means in the sink-extraction rule min{out(d), q_t(d)}.
enum class ExtractionBasis {
  /// Post-transmission queue (physical: a sink extracts what it holds).
  kPostTransmit,
  /// Step-start (post-injection) queue, clamped to the current content —
  /// the paper's literal reading.
  kSnapshot,
};

/// Resolution when both directions of one link are scheduled (impossible
/// for LGG without lying declarations, routine for gradient-free baselines
/// such as random walk).
enum class LinkConflictPolicy {
  /// The link carries the transmission with the larger queue drop; the
  /// loser's packet stays in its queue ("each link can transmit at most 1
  /// packet").
  kDropLower,
  /// Both fire (interpret the link as full-duplex).
  kAllowBoth,
};

/// Everything that happened inside one step, exposed to a StepObserver.
/// Spans are only valid during the on_step call.
struct StepRecord {
  const SdNetwork* net = nullptr;
  TimeStep t = 0;
  std::span<const PacketCount> before_injection;  ///< x_t
  std::span<const PacketCount> at_selection;      ///< q_t (post-injection)
  std::span<const PacketCount> declared;          ///< q'_t
  std::span<const PacketCount> after_step;        ///< x_{t+1}
  std::span<const Transmission> transmissions;    ///< as proposed
  std::span<const char> kept;   ///< fired (post scheduler + link conflict)
  std::span<const char> lost;   ///< loss-model verdicts (only if kept)
  StepStats stats;
};

/// Per-step instrumentation hook (Lyapunov audits, tracing, ...).
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const StepRecord& record) = 0;
};

struct SimulatorOptions {
  ExtractionBasis extraction_basis = ExtractionBasis::kPostTransmit;
  LinkConflictPolicy link_conflict = LinkConflictPolicy::kDropLower;
  ExtractionPolicy extraction_policy = ExtractionPolicy::kEager;
  DeclarationPolicy declaration_policy = DeclarationPolicy::kTruthful;
  /// Validate the protocol's transmission contract every step (tests).
  bool check_contract = false;
  std::uint64_t seed = 0x00c0ffee00c0ffeeULL;
};

class ParallelStepEngine;

class Simulator {
 public:
  /// The protocol defaults to LGG.
  Simulator(SdNetwork net, SimulatorOptions options = {},
            std::unique_ptr<RoutingProtocol> protocol = nullptr);
  ~Simulator();

  /// Switches step() to the graph-partitioned shard engine: nodes are
  /// split into `shards` balanced regions (graph/partition.hpp) and the
  /// injection/selection/apply/extraction phases run shard-parallel on an
  /// internal thread pool (`threads` == 0 picks min(shards, hardware)).
  /// The trajectory — queues, stats, drift attribution, telemetry bytes,
  /// checkpoint bytes — is bitwise identical to the serial engine for
  /// every (shards, threads) choice.  May be called between steps; the
  /// partition derives from the base graph only, so topology dynamics and
  /// checkpoint restores compose freely.
  void enable_sharding(std::uint32_t shards, std::size_t threads = 0);
  /// Returns step() to the serial engine.
  void disable_sharding();
  /// Shards of the active engine (1 when serial).
  [[nodiscard]] std::uint32_t shard_count() const;

  // Optional components (defaults: exact arrivals, no loss, no
  // interference, static topology).
  void set_arrival(std::unique_ptr<ArrivalProcess> arrival);
  void set_loss(std::unique_ptr<LossModel> loss);
  void set_scheduler(std::unique_ptr<Scheduler> scheduler);
  void set_dynamics(std::unique_ptr<TopologyDynamics> dynamics);

  /// Installs a fault injector (node crashes, sink outages, source surges,
  /// Byzantine declarations, topology churn — core/faults.hpp).  The
  /// schedule is validated against the network; pass nullptr to remove.
  void set_faults(std::unique_ptr<FaultInjector> faults);
  [[nodiscard]] const FaultInjector* faults() const { return faults_.get(); }

  /// What the most recent step's scheduled churn mutated (empty on steps
  /// without churn).  Valid until the next step starts.
  [[nodiscard]] const TopologyDelta& last_churn() const {
    return churn_delta_;
  }
  /// Bumped on every effective topology change (dynamics, fault
  /// transitions, churn); keys protocol caches and certificate staleness.
  [[nodiscard]] std::uint64_t topology_version() const {
    return topology_version_;
  }

  /// Installs an instrumentation hook called at the end of every step.
  /// Not owned; pass nullptr to detach.  Enables extra per-step queue
  /// snapshots (small overhead).
  void set_observer(StepObserver* observer) { observer_ = observer; }

  /// Attaches a per-phase profiler (wall time + work counters for the 8
  /// step phases).  Not owned; pass nullptr to detach.  Costs two clock
  /// reads per phase while attached, nothing when detached.
  void set_profiler(StepProfiler* profiler) { profiler_ = profiler; }

  /// Attaches a span tracer (obs/span.hpp): every phase — per shard when
  /// the shard engine runs — records a (step, phase, shard, thread,
  /// t_start, dur) span into a preallocated ring, exportable as a Chrome
  /// trace.  Not owned; pass nullptr to detach.  Spans read clocks only —
  /// no RNG, no queue access, no telemetry writes — so attaching a tracer
  /// never perturbs the trajectory or the telemetry bytes.
  void set_tracer(obs::SpanTracer* tracer);

  /// Attaches a telemetry session (obs/telemetry.hpp): metric registry,
  /// per-node drift attribution, flight recorder, JSONL snapshots.  Not
  /// owned; pass nullptr to detach.  Binds the session to this network
  /// and registers component metrics (protocol, scheduler, faults).  The
  /// step pays one branch while the session is not armed() — drift
  /// attribution and per-mutation accounting only run when a sink or
  /// flight recorder is actually listening.
  void set_telemetry(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const { return telemetry_; }

  /// Attaches an admission controller (core/admission.hpp) consulted before
  /// the injection phase: it sees the pre-injection potential and may shed
  /// part of each source's offered packets.  Not owned; pass nullptr to
  /// detach.  Admission state is part of the checkpoint (strict presence:
  /// governed checkpoints only restore into governed simulators).
  void set_admission(AdmissionController* admission);
  [[nodiscard]] AdmissionController* admission() const { return admission_; }

  [[nodiscard]] const SdNetwork& network() const { return net_; }
  [[nodiscard]] const RoutingProtocol& protocol() const { return *protocol_; }
  [[nodiscard]] const graph::EdgeMask& edge_mask() const { return mask_; }
  [[nodiscard]] TimeStep now() const { return t_; }

  [[nodiscard]] std::span<const PacketCount> queues() const {
    return queue_;
  }
  /// Seeds an initial queue (e.g. the inflated starting states of the
  /// Property-2 drift experiments).  Only allowed before the first step.
  void set_initial_queue(NodeId v, PacketCount q);

  // Σq and Σq² are maintained incrementally by every queue mutation, so
  // both accessors are O(1); in debug builds each step cross-checks them
  // against a full scan.  max_queue() still scans (a decrement at the
  // argmax cannot be repaired in O(1)).

  /// Σ_v q_t(v), O(1).
  [[nodiscard]] PacketCount total_packets() const { return sum_q_; }
  /// P_t = Σ_v q_t(v)² (Definition 1), O(1); double to survive divergence.
  [[nodiscard]] double network_state() const {
    return static_cast<double>(sum_sq_);
  }
  [[nodiscard]] PacketCount max_queue() const;

  /// Sources visited by the most recent injection phase.  Dense arrival
  /// processes visit every source; a process publishing active_sources()
  /// is visited sparsely, so this stays O(active sources + surging
  /// sources) per step on million-source topologies.  Diagnostic only —
  /// not part of the checkpoint.
  [[nodiscard]] std::uint64_t last_injection_visits() const {
    return last_injection_visits_;
  }

  [[nodiscard]] const CumulativeStats& cumulative() const { return totals_; }

  /// Conservation audit: initial + injected − extracted − lost == stored.
  [[nodiscard]] bool conserves_packets() const;

  /// Executes one synchronous step and returns its statistics.
  StepStats step();

  /// Runs `steps` steps; if `recorder` is given, observes after each step.
  void run(TimeStep steps, MetricsRecorder* recorder = nullptr);

  // Crash-safe checkpointing (implemented in core/checkpoint.cpp).  A
  // restored simulator continues bitwise-identically to the uninterrupted
  // run, provided it is reassembled with the same network and components
  // before restore_checkpoint is called.
  void save_checkpoint(std::ostream& os) const;
  void restore_checkpoint(std::istream& is);

 private:
  // The shard engine is the only other writer of simulator state; it
  // reuses the phase helpers below and mirrors apply_queue_delta with
  // per-shard accumulators folded in shard order.
  friend class ParallelStepEngine;

  /// The single funnel for queue mutations: updates the queue and the
  /// running Σq / Σq² so total_packets()/network_state() stay O(1).  When
  /// drift attribution is live (telemetry armed), the mutation's exact ΔP
  /// contribution δ(2q+δ) is recorded against (node, cause); computed in
  /// unsigned 64-bit (wraparound-safe, exact whenever the true values fit
  /// in int64 — the same modular discipline as the Σq² accumulator).
  void apply_queue_delta(NodeId v, PacketCount delta, obs::DriftCause cause) {
    auto& q = queue_[static_cast<std::size_t>(v)];
    if (drift_ != nullptr) {
      const auto uq = static_cast<std::uint64_t>(q);
      const auto ud = static_cast<std::uint64_t>(delta);
      drift_->record(v, cause, ud * (2 * uq + ud));
    }
    sum_sq_ += detail::square(q + delta) - detail::square(q);
    sum_q_ += delta;
    q += delta;
  }

  /// Registers component metrics into the attached telemetry session.
  void register_component_metrics();

  /// Debug-only full-scan cross-check of the incremental counters.
  void audit_counters() const;

  // The step pipeline is factored into phase helpers shared verbatim by
  // the serial path and the shard engine (which replaces only the phases
  // it parallelizes).  All of them assume they are called in pipeline
  // order within one step.

  /// The Rng owning the addressed stream of (this step, phase, node).
  [[nodiscard]] Rng phase_rng(StepPhase phase,
                              std::uint64_t node = kGlobalDraw) const {
    return draw_rng(options_.seed, static_cast<std::uint64_t>(t_),
                    static_cast<std::uint64_t>(phase), node);
  }

  /// Arms telemetry/drift for this step; returns the session or nullptr.
  obs::Telemetry* arm_telemetry();
  /// Phase 1: topology dynamics + fault transitions; returns the mask the
  /// rest of the step routes against.
  const graph::EdgeMask* phase_dynamics(StepStats& stats,
                                        obs::Telemetry* tel);
  /// Phase 2 prologue: the arrival process's once-per-step serial hook
  /// (core/arrival.hpp ArrivalContext).  Both engines call it exactly once
  /// before any packets() call, so stateful/adversarial processes stay
  /// bitwise engine-independent.
  void arrival_begin_step();
  /// Phase 2, serial form (also used by the shard engine when admission
  /// control or a stateful arrival process forces ordered calls).  Visits
  /// every source, or — when the arrival process publishes a sparse
  /// active-source set — only the active and surging sources.
  void phase_injection_serial(StepStats& stats, obs::Telemetry* tel,
                              const graph::EdgeMask* active_mask);
  /// Phase 3: declarations; returns the view (may alias queue_) and adds
  /// the per-node evaluations performed to `work`.
  std::span<const PacketCount> phase_declarations(std::uint64_t& work);
  /// Phase 1 tail: flight-recorder events for this step's churn mutations.
  void record_churn_flight_events(obs::Telemetry* tel);
  /// Phase 7 tail: per-transmission flight-recorder events.
  void record_tx_flight_events(obs::Telemetry* tel);
  /// Common step tail: cumulative stats, counter audit, telemetry sample,
  /// observer callback, step counter.
  void step_epilogue(StepStats& stats, obs::Telemetry* tel,
                     std::span<const PacketCount> declared_view);
  /// Serial engine body.
  StepStats step_serial();

  SdNetwork net_;
  SimulatorOptions options_;
  std::unique_ptr<RoutingProtocol> protocol_;
  std::unique_ptr<ArrivalProcess> arrival_;
  std::unique_ptr<LossModel> loss_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<TopologyDynamics> dynamics_;
  std::unique_ptr<FaultInjector> faults_;

  graph::CsrIncidence incidence_;
  graph::EdgeMask mask_;
  graph::EdgeMask effective_mask_;  // mask_ with fault down-nodes overlaid

  // Non-null while sharding is enabled; owns the partition, thread pool,
  // and per-shard scratch.  Holds no cross-step trajectory state, so
  // enabling/disabling between steps (or across a checkpoint restore)
  // never perturbs the run.
  std::unique_ptr<ParallelStepEngine> engine_;

  StepObserver* observer_ = nullptr;
  StepProfiler* profiler_ = nullptr;
  obs::SpanTracer* tracer_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  obs::DriftAttributor* drift_ = nullptr;  // non-null only while armed
  obs::Gauge* topology_gauge_ = nullptr;   // "sim.topology_version"
  AdmissionController* admission_ = nullptr;

  std::vector<PacketCount> queue_;
  std::vector<PacketCount> declared_;
  std::vector<PacketCount> snapshot_;       // q_t: post-injection snapshot
  std::vector<PacketCount> pre_injection_;  // x_t: start-of-step snapshot
  std::vector<Transmission> txs_;     // scratch
  std::vector<char> keep_;            // scratch
  std::vector<char> lost_;            // scratch
  LinkConflictScratch conflict_scratch_;
  // Per-step (node, wiped packets) pairs for flight-recorder crash events.
  std::vector<std::pair<NodeId, PacketCount>> wiped_scratch_;
  // What this step's scheduled churn mutated; cleared at phase 1, consumed
  // by admission control (certificate patching) and telemetry.
  TopologyDelta churn_delta_;

  TimeStep t_ = 0;
  std::uint64_t topology_version_ = 0;
  std::uint64_t last_injection_visits_ = 0;
  PacketCount initial_total_ = 0;
  PacketCount sum_q_ = 0;             // running Σ_v q(v)
  detail::QuadAccum sum_sq_ = 0;      // running Σ_v q(v)²
  CumulativeStats totals_;
};

}  // namespace lgg::core
