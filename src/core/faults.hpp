// Fault injection: node crashes, sink outages, source surges, and Byzantine
// declaration corruption, driven by a scriptable, seed-deterministic
// schedule.
//
// The paper's stability claims (Lemma 1, Conjectures 1/4) are adversarial:
// P_t stays bounded under *every* silent-loss pattern and, conjecturally,
// under dynamic edge sets.  The loss and dynamics components perturb links;
// this module perturbs *nodes* so experiments can measure the potential's
// recovery after whole-node failures:
//
//   * crash (wipe)   — the node goes down and its queue is destroyed; the
//                      wiped packets are accounted as `crash_wiped` in the
//                      step stats so the conservation audit still balances.
//   * crash (freeze) — the node goes down but keeps its packets; they thaw
//                      when it recovers.
//   * sink outage    — a window where out(d) behaves as 0 (no extraction).
//   * source surge   — a window where a source injects `extra` packets per
//                      step on top of its arrival process.
//   * byzantine      — the node declares a fixed queue value to neighbours,
//                      violating Definition 7's R-bound whenever it differs
//                      from the true queue above R.
//
// While a node is down every incident link is inactive (the simulator
// overlays the fault state onto the dynamics-owned edge mask), it neither
// injects nor extracts, and no transmissions touch it.
//
// On top of the windowed faults, the schedule can script *churn*: live,
// instantaneous topology and rate mutations that model nodes and links
// joining and leaving the network (Conjecture 4's dynamic edge sets made
// concrete):
//
//   * edge_remove / edge_add — toggles an edge's churn overlay; a removed
//                      edge stays out of the effective mask until a
//                      matching edge_add restores it.
//   * node_leave     — the node departs: its spec is parked (it stops
//                      being a source/sink), its queue is wiped (accounted
//                      as crash_wiped so conservation balances), and its
//                      incident edges leave the effective mask.
//   * node_join      — a departed node re-enters with its parked spec.
//   * nudge          — in(v)/out(v) move by din/dout, clamped at 0.
//
// Each churn event fires exactly once, at step `at`, draws from no RNG,
// and reports what changed through a TopologyDelta so downstream consumers
// (admission certificates, shard role lists, telemetry) can react in
// O(|delta|).
//
// Determinism: scheduled events are pure functions of the step index, and
// the random-crash process draws from the injector's own RNG (seeded at
// construction), so a faulted run is a pure function of
// (network, components, seed, schedule, fault_seed) — and the injector's
// state checkpoints alongside the simulator's (save_state/load_state).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/sd_network.hpp"
#include "core/topology_delta.hpp"

namespace lgg::obs {
class Counter;
class MetricRegistry;
}  // namespace lgg::obs

namespace lgg::core {

enum class FaultKind : std::uint8_t {
  kCrash,        ///< node down for the window; mode decides wipe vs freeze
  kSinkOutage,   ///< out(node) = 0 for the window
  kSourceSurge,  ///< node injects `extra` additional packets per step
  kByzantine,    ///< node declares `declare` regardless of its true queue
  // Churn events below are instantaneous (fire once, at step `at`).
  kEdgeRemove,     ///< edge leaves the live topology until re-added
  kEdgeAdd,        ///< a removed edge re-enters the live topology
  kNodeLeave,      ///< node departs: spec parked, queue wiped, links cut
  kNodeJoin,       ///< a departed node re-enters with its parked spec
  kCapacityNudge,  ///< in(node) += din, out(node) += dout, clamped at 0
};

/// True for the instantaneous topology-churn kinds.
[[nodiscard]] constexpr bool is_churn(FaultKind kind) {
  return kind == FaultKind::kEdgeRemove || kind == FaultKind::kEdgeAdd ||
         kind == FaultKind::kNodeLeave || kind == FaultKind::kNodeJoin ||
         kind == FaultKind::kCapacityNudge;
}

enum class CrashMode : std::uint8_t {
  kWipe,    ///< queue destroyed on crash (counted as crash_wiped)
  kFreeze,  ///< queue kept; reappears on recovery
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
[[nodiscard]] std::string_view to_string(CrashMode mode);

/// One scheduled fault.  For windowed kinds the window is [at, at +
/// duration); duration < 0 means "until the end of the run".  Churn kinds
/// (is_churn) are instantaneous: they fire exactly once at step `at` and
/// ignore `duration`.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  NodeId node = kInvalidNode;
  TimeStep at = 0;
  TimeStep duration = -1;
  CrashMode mode = CrashMode::kWipe;
  PacketCount extra = 0;     ///< surge packets per step (kSourceSurge)
  PacketCount declare = 0;   ///< declared queue value (kByzantine)
  EdgeId edge = kInvalidEdge;  ///< target edge (kEdgeRemove / kEdgeAdd)
  Cap din = 0;               ///< in-rate delta (kCapacityNudge)
  Cap dout = 0;              ///< out-rate delta (kCapacityNudge)
};

/// Memoryless random crashes on top of the scheduled events: each up node
/// independently crashes with probability `p_per_step`, staying down for a
/// uniform duration in [min_down, max_down].
struct RandomCrashConfig {
  double p_per_step = 0.0;
  TimeStep min_down = 1;
  TimeStep max_down = 1;
  CrashMode mode = CrashMode::kWipe;
};

class FaultSchedule {
 public:
  FaultSchedule& add(FaultEvent event);
  FaultSchedule& set_random_crashes(RandomCrashConfig config);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const RandomCrashConfig& random_crashes() const {
    return random_;
  }
  [[nodiscard]] bool empty() const {
    return events_.empty() && random_.p_per_step <= 0.0;
  }

  [[nodiscard]] bool has_churn_events() const { return churn_events_ > 0; }

  /// Throws ContractViolation if any event references a node or edge
  /// outside `net`, surges a non-source, or outages a non-sink.
  void validate(const SdNetwork& net) const;

  /// Everything validate() checks, plus structural sanity the tools enforce
  /// before a run starts (exit code 2 on failure): no duplicate events, no
  /// overlapping scheduled crash windows on one node, every node_join
  /// strictly after a matching node_leave, and every edge_add strictly
  /// after a matching edge_remove.
  void validate_strict(const SdNetwork& net) const;

 private:
  std::vector<FaultEvent> events_;
  RandomCrashConfig random_;
  std::size_t churn_events_ = 0;  ///< count of is_churn entries in events_
};

/// Parses the `--faults` spec grammar: semicolon-separated clauses
///
///   crash:node=3,at=100,for=50,mode=wipe|freeze
///   sink_outage:node=5,at=200,for=30
///   surge:node=0,at=10,for=5,extra=4
///   byzantine:node=2,at=0,for=1000,declare=0
///   random_crashes:p=0.001,down=20..50,mode=freeze
///   edge_remove:edge=7,at=100
///   edge_add:edge=7,at=250
///   node_leave:node=3,at=100
///   node_join:node=3,at=400
///   nudge:node=2,at=50,din=1,dout=-1
///
/// `for` defaults to -1 (until the end of the run) and is rejected on the
/// instantaneous churn clauses.  Throws ContractViolation with a one-line
/// description on any malformed clause.
FaultSchedule parse_fault_spec(const std::string& spec);

/// Round-trips a schedule back to the spec grammar (crash dumps, logs).
std::string to_string(const FaultSchedule& schedule);

/// Per-step driver the Simulator consults; owns the fault RNG stream.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule, std::uint64_t seed = 0xFA);

  struct StepEffects {
    bool any_down = false;          ///< ≥ 1 node down during this step
    bool down_set_changed = false;  ///< membership changed at this step
    bool any_byzantine = false;     ///< ≥ 1 corrupted declaration
  };

  /// Applies start-of-step transitions for step t (monotonically increasing
  /// across calls except after load_state).  `wipe` is invoked once for
  /// every node whose queue must be destroyed by a wipe-mode crash.
  StepEffects begin_step(TimeStep t, const SdNetwork& net,
                         const std::function<void(NodeId)>& wipe);

  /// Fires the churn events scheduled at step t, mutating `net`'s specs
  /// (node_leave/node_join/nudge) and the injector's edge/departure
  /// overlays, and appends every mutation to `delta` (which the caller
  /// clears).  `wipe` destroys a departing node's queue, accounted exactly
  /// like a wipe-mode crash.  Call before begin_step(t, ...) so the step's
  /// windowed effects see the post-churn roles.  Returns true if anything
  /// changed.  Draws from no RNG.
  bool apply_churn(TimeStep t, SdNetwork& net, TopologyDelta& delta,
                   const std::function<void(NodeId)>& wipe);

  /// True while any churn overlay is in force (removed edges or departed
  /// nodes) — the simulator must then route against the overlaid mask even
  /// when no node is down.
  [[nodiscard]] bool churn_overlay_active() const {
    return removed_edge_count_ > 0 || departed_count_ > 0;
  }
  [[nodiscard]] bool edge_removed(EdgeId e) const;
  [[nodiscard]] bool node_departed(NodeId v) const;

  // Queries about the step most recently passed to begin_step.
  [[nodiscard]] bool node_down(NodeId v) const;
  [[nodiscard]] bool sink_out(NodeId v) const;
  [[nodiscard]] PacketCount surge_extra(NodeId v) const;
  /// Sources with an active surge window this step (schedule order,
  /// duplicate-free).  The sparse injection path unions these with the
  /// arrival process's active-source set so a surge is never missed when
  /// the arrival process itself skips the node.
  [[nodiscard]] const std::vector<NodeId>& surging_sources() const {
    return surge_nodes_;
  }
  /// Nodes whose down-state flipped at the most recent begin_step, in
  /// node-id order (telemetry: flight-recorder fault-transition events).
  [[nodiscard]] const std::vector<NodeId>& went_down() const {
    return went_down_;
  }
  [[nodiscard]] const std::vector<NodeId>& came_up() const {
    return came_up_;
  }
  /// Byzantine nodes active this step with their corrupted declarations.
  [[nodiscard]] const std::vector<std::pair<NodeId, PacketCount>>&
  byzantine_declarations() const {
    return byz_active_;
  }

  /// Deactivates every edge incident to a down or departed node, plus every
  /// edge currently removed by churn.
  void apply_to_mask(const SdNetwork& net, graph::EdgeMask& mask) const;

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  // Checkpoint support: the down-state and the fault RNG stream are the
  // only cross-step state (windowed effects are recomputed from the
  // schedule each begin_step).
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

  /// Registers faults.crashes / faults.recoveries counters (bumped on each
  /// down-state transition) and faults.churn (bumped once per applied churn
  /// mutation).
  void register_metrics(obs::MetricRegistry& registry);

 private:
  void ensure_sized(NodeId n);
  void ensure_edges(EdgeId n);

  FaultSchedule schedule_;
  Rng rng_;

  // Per-node cross-step state: 0 = up, otherwise down until this step
  // (exclusive); kForever for open-ended crashes.
  std::vector<TimeStep> down_until_;
  std::vector<char> down_now_;

  // Churn overlays (cross-step, checkpointed): edges currently removed,
  // nodes currently departed, and the spec each departed node re-enters
  // with on node_join.
  std::vector<char> edge_removed_;
  std::vector<char> departed_;
  std::vector<NodeSpec> parked_specs_;
  std::size_t removed_edge_count_ = 0;
  std::size_t departed_count_ = 0;

  // Per-step recomputed state (begin_step).
  std::vector<PacketCount> surge_;             // dense, reset via surge_nodes_
  std::vector<NodeId> surge_nodes_;
  std::vector<char> sink_out_;                 // dense, reset via out_nodes_
  std::vector<NodeId> out_nodes_;
  std::vector<std::pair<NodeId, PacketCount>> byz_active_;
  std::vector<NodeId> went_down_;              // transitions at this step
  std::vector<NodeId> came_up_;

  obs::Counter* crashes_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
  obs::Counter* churn_counter_ = nullptr;
};

}  // namespace lgg::core
