// Fault injection: node crashes, sink outages, source surges, and Byzantine
// declaration corruption, driven by a scriptable, seed-deterministic
// schedule.
//
// The paper's stability claims (Lemma 1, Conjectures 1/4) are adversarial:
// P_t stays bounded under *every* silent-loss pattern and, conjecturally,
// under dynamic edge sets.  The loss and dynamics components perturb links;
// this module perturbs *nodes* so experiments can measure the potential's
// recovery after whole-node failures:
//
//   * crash (wipe)   — the node goes down and its queue is destroyed; the
//                      wiped packets are accounted as `crash_wiped` in the
//                      step stats so the conservation audit still balances.
//   * crash (freeze) — the node goes down but keeps its packets; they thaw
//                      when it recovers.
//   * sink outage    — a window where out(d) behaves as 0 (no extraction).
//   * source surge   — a window where a source injects `extra` packets per
//                      step on top of its arrival process.
//   * byzantine      — the node declares a fixed queue value to neighbours,
//                      violating Definition 7's R-bound whenever it differs
//                      from the true queue above R.
//
// While a node is down every incident link is inactive (the simulator
// overlays the fault state onto the dynamics-owned edge mask), it neither
// injects nor extracts, and no transmissions touch it.
//
// Determinism: scheduled events are pure functions of the step index, and
// the random-crash process draws from the injector's own RNG (seeded at
// construction), so a faulted run is a pure function of
// (network, components, seed, schedule, fault_seed) — and the injector's
// state checkpoints alongside the simulator's (save_state/load_state).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/sd_network.hpp"

namespace lgg::obs {
class Counter;
class MetricRegistry;
}  // namespace lgg::obs

namespace lgg::core {

enum class FaultKind : std::uint8_t {
  kCrash,        ///< node down for the window; mode decides wipe vs freeze
  kSinkOutage,   ///< out(node) = 0 for the window
  kSourceSurge,  ///< node injects `extra` additional packets per step
  kByzantine,    ///< node declares `declare` regardless of its true queue
};

enum class CrashMode : std::uint8_t {
  kWipe,    ///< queue destroyed on crash (counted as crash_wiped)
  kFreeze,  ///< queue kept; reappears on recovery
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
[[nodiscard]] std::string_view to_string(CrashMode mode);

/// One scheduled fault.  The window is [at, at + duration); duration < 0
/// means "until the end of the run".
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  NodeId node = kInvalidNode;
  TimeStep at = 0;
  TimeStep duration = -1;
  CrashMode mode = CrashMode::kWipe;
  PacketCount extra = 0;    ///< surge packets per step (kSourceSurge)
  PacketCount declare = 0;  ///< declared queue value (kByzantine)
};

/// Memoryless random crashes on top of the scheduled events: each up node
/// independently crashes with probability `p_per_step`, staying down for a
/// uniform duration in [min_down, max_down].
struct RandomCrashConfig {
  double p_per_step = 0.0;
  TimeStep min_down = 1;
  TimeStep max_down = 1;
  CrashMode mode = CrashMode::kWipe;
};

class FaultSchedule {
 public:
  FaultSchedule& add(FaultEvent event);
  FaultSchedule& set_random_crashes(RandomCrashConfig config);

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const RandomCrashConfig& random_crashes() const {
    return random_;
  }
  [[nodiscard]] bool empty() const {
    return events_.empty() && random_.p_per_step <= 0.0;
  }

  /// Throws ContractViolation if any event references a node outside `net`,
  /// surges a non-source, or outages a non-sink.
  void validate(const SdNetwork& net) const;

 private:
  std::vector<FaultEvent> events_;
  RandomCrashConfig random_;
};

/// Parses the `--faults` spec grammar: semicolon-separated clauses
///
///   crash:node=3,at=100,for=50,mode=wipe|freeze
///   sink_outage:node=5,at=200,for=30
///   surge:node=0,at=10,for=5,extra=4
///   byzantine:node=2,at=0,for=1000,declare=0
///   random_crashes:p=0.001,down=20..50,mode=freeze
///
/// `for` defaults to -1 (until the end of the run).  Throws
/// ContractViolation with a one-line description on any malformed clause.
FaultSchedule parse_fault_spec(const std::string& spec);

/// Round-trips a schedule back to the spec grammar (crash dumps, logs).
std::string to_string(const FaultSchedule& schedule);

/// Per-step driver the Simulator consults; owns the fault RNG stream.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule, std::uint64_t seed = 0xFA);

  struct StepEffects {
    bool any_down = false;          ///< ≥ 1 node down during this step
    bool down_set_changed = false;  ///< membership changed at this step
    bool any_byzantine = false;     ///< ≥ 1 corrupted declaration
  };

  /// Applies start-of-step transitions for step t (monotonically increasing
  /// across calls except after load_state).  `wipe` is invoked once for
  /// every node whose queue must be destroyed by a wipe-mode crash.
  StepEffects begin_step(TimeStep t, const SdNetwork& net,
                         const std::function<void(NodeId)>& wipe);

  // Queries about the step most recently passed to begin_step.
  [[nodiscard]] bool node_down(NodeId v) const;
  [[nodiscard]] bool sink_out(NodeId v) const;
  [[nodiscard]] PacketCount surge_extra(NodeId v) const;
  /// Nodes whose down-state flipped at the most recent begin_step, in
  /// node-id order (telemetry: flight-recorder fault-transition events).
  [[nodiscard]] const std::vector<NodeId>& went_down() const {
    return went_down_;
  }
  [[nodiscard]] const std::vector<NodeId>& came_up() const {
    return came_up_;
  }
  /// Byzantine nodes active this step with their corrupted declarations.
  [[nodiscard]] const std::vector<std::pair<NodeId, PacketCount>>&
  byzantine_declarations() const {
    return byz_active_;
  }

  /// Deactivates every edge incident to a down node.
  void apply_to_mask(const SdNetwork& net, graph::EdgeMask& mask) const;

  [[nodiscard]] const FaultSchedule& schedule() const { return schedule_; }

  // Checkpoint support: the down-state and the fault RNG stream are the
  // only cross-step state (windowed effects are recomputed from the
  // schedule each begin_step).
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

  /// Registers faults.crashes / faults.recoveries counters, bumped on each
  /// down-state transition.
  void register_metrics(obs::MetricRegistry& registry);

 private:
  void ensure_sized(NodeId n);

  FaultSchedule schedule_;
  Rng rng_;

  // Per-node cross-step state: 0 = up, otherwise down until this step
  // (exclusive); kForever for open-ended crashes.
  std::vector<TimeStep> down_until_;
  std::vector<char> down_now_;

  // Per-step recomputed state (begin_step).
  std::vector<PacketCount> surge_;             // dense, reset via surge_nodes_
  std::vector<NodeId> surge_nodes_;
  std::vector<char> sink_out_;                 // dense, reset via out_nodes_
  std::vector<NodeId> out_nodes_;
  std::vector<std::pair<NodeId, PacketCount>> byz_active_;
  std::vector<NodeId> went_down_;              // transitions at this step
  std::vector<NodeId> came_up_;

  obs::Counter* crashes_counter_ = nullptr;
  obs::Counter* recoveries_counter_ = nullptr;
};

}  // namespace lgg::core
