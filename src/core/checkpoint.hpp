// Crash-safe simulator checkpoints.
//
// A checkpoint captures everything that determines the rest of a
// trajectory: the step index, queues, edge mask, topology version, the
// Σq / Σq² accumulators, cumulative stats, the master seed (draws are
// addressed by (seed, step, phase, node), so seed + step pin every
// remaining draw — there is no evolving stream to capture), an
// opaque state blob per component (protocol, arrival, loss, scheduler,
// dynamics, faults), and — when a telemetry session is attached — the
// telemetry state (snapshot sequence number, metric values, cumulative
// drift, flight-recorder ring).  Restoring into a simulator assembled
// with the same network, options, and component configuration continues
// the run bitwise-identically to one that was never interrupted; with the
// telemetry state restored, the resumed run also emits byte-identical
// JSONL telemetry.
//
// Wire format (all integers little-endian; see docs/formats.md):
//
//   magic   8 bytes  "LGGCKPT1"
//   version u32      kCheckpointVersion
//   size    u64      payload byte count
//   crc     u32      CRC-32 (IEEE, poly 0xEDB88320) of the payload
//   payload size bytes
//
// The header is validated before any payload field is interpreted, so a
// truncated or bit-flipped file fails loudly with CheckpointError instead
// of resuming from garbage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace lgg::core {

class Simulator;

/// Any structural problem with a checkpoint: bad magic, version or size
/// mismatch, CRC failure, truncation, or a configuration that does not
/// match the saved state.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char kCheckpointMagic[8] = {'L', 'G', 'G', 'C',
                                             'K', 'P', 'T', '1'};
/// v2: fault-injector blobs carry the live down-state bit per entry (so a
/// resume reports no spurious fault transitions) and the payload gains an
/// optional trailing telemetry section.
/// v3: cumulative totals gain the admission `shed` counter and the payload
/// gains a trailing admission-controller section (strict presence: a
/// governed checkpoint only restores into a simulator with an admission
/// controller attached, and vice versa — admission state steers the
/// trajectory, so a mismatch cannot resume bitwise-identically).
/// v4: the serialized RNG stream is replaced by the master seed.  Draws
/// are addressed by (seed, step, phase, node) — common/rng.hpp — so there
/// is no evolving stream to capture: (seed, t) alone pins every future
/// draw, under any shard count.  Older versions are rejected with an error
/// naming both versions.
/// v5: the payload gains a node-spec section (in/out/retention per node)
/// after the edge mask.  Topology churn (core/faults.hpp) mutates specs
/// mid-run, so a mid-churn checkpoint must carry the *current* rates — the
/// network file only has the initial ones.  Restore re-applies the saved
/// specs, which also rebuilds the role indices (and, when sharding is
/// enabled, the per-shard role lists), so a mid-churn resume is bitwise
/// identical to the uninterrupted run.
/// v6: the telemetry section gains a hotspot-tracker subsection (strict
/// presence byte + both Space-Saving sketches) after the flight ring, so
/// a resumed run with --hotspots emits byte-identical "hotspots" lines.
/// v7: arrival-component blobs move to the flat sparse layout (size,
/// entry count, strictly-ascending index/value pairs) shared by the
/// stateful processes — TokenBucketArrival's token balances, the
/// LeakyBucketArrival fixed-point buckets, and the adversarial traffic
/// plane's window/token state (src/traffic/adversary.hpp: per-source
/// buckets + catch-up timestamps + sweep cursor), so a mid-hoard resume
/// is bitwise identical to the uninterrupted run.
/// v8: the per-snapshot payload layout is identical to v7; the version
/// marks the generation-chain era — snapshots are now fsync'd before the
/// rename and retained in a ring described by a CRC'd manifest
/// (core/ckpt_chain.hpp), so "v8" on disk promises the stronger
/// durability contract.
inline constexpr std::uint32_t kCheckpointVersion = 8;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).  `seed` chains
/// incremental computations; pass the previous return value.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

/// Writes a checkpoint to `path` (binary).  Throws CheckpointError when the
/// file cannot be written.  Callers that need crash atomicity should use
/// write_checkpoint_file_atomic instead.
void write_checkpoint_file(const Simulator& sim, const std::string& path);

/// Crash-atomic, durable variant: writes to `path`.tmp, fsyncs the temp
/// file, renames, and fsyncs the directory (best effort), so a reader at
/// `path` sees either the complete old checkpoint or the complete new one
/// — and the new one survives a power cut once the call returns.  Throws
/// CheckpointError on any failure (the temp file is removed).  Failpoint
/// sites ckpt.{write,fsync,rename} (common/failpoint.hpp) are compiled
/// into the stages.
void write_checkpoint_file_atomic(const Simulator& sim,
                                  const std::string& path);

/// Restores `sim` from the checkpoint at `path`.  Throws CheckpointError on
/// a missing/corrupt file or mismatched configuration.
void restore_checkpoint_file(Simulator& sim, const std::string& path);

}  // namespace lgg::core
