// Empirical stability verdicts (Definition 2) from a P_t trajectory.
//
// A run is classified by comparing window means over the trajectory and the
// least-squares slope of its tail: a bounded sequence has flat windows; a
// diverging one (infeasible arrival rate ⇒ P_t grows ~ c·t²) has sharply
// increasing windows.  The verdict is deliberately conservative —
// kInconclusive when the horizon is too short to call.
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "common/types.hpp"

namespace lgg::core {

enum class Verdict {
  kStable,
  kDiverging,
  kInconclusive,
};

[[nodiscard]] std::string_view to_string(Verdict verdict);

struct StabilityOptions {
  /// Fraction of the trajectory used for the tail slope.
  double tail_fraction = 0.5;
  /// Windows ratio above which the run is declared diverging.
  double diverging_ratio = 1.5;
  /// Windows ratio below which the run is declared stable.
  double stable_ratio = 1.15;
  /// Additive slack so tiny trajectories don't trip the ratios.
  double slack = 10.0;
  /// Minimum trajectory length for a non-inconclusive verdict.
  std::size_t min_length = 16;
};

struct StabilityReport {
  Verdict verdict = Verdict::kInconclusive;
  double tail_slope = 0.0;   ///< least-squares slope of the tail of P_t
  double max_state = 0.0;    ///< sup_t P_t over the run
  double final_state = 0.0;  ///< P_T
  double tail_mean = 0.0;
  /// sup_t P_t <= bound, when a theoretical bound was supplied.
  std::optional<bool> within_bound;
};

StabilityReport assess_stability(std::span<const double> network_state,
                                 std::optional<double> theoretical_bound = {},
                                 const StabilityOptions& options = {});

/// Definition 9 ("infinitely bounded"), empirically: the trajectory returns
/// below `bound` at least `min_returns` times in its trailing half.
bool returns_below(std::span<const double> series, double bound,
                   std::size_t min_returns);

}  // namespace lgg::core
