#include "core/lgg_protocol.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace lgg::core {

void LggProtocol::select_transmissions(const StepView& view, Rng& rng,
                                       std::vector<Transmission>& out) {
  const NodeId n = view.net->node_count();
  std::uint64_t active = 0;
  for (NodeId u = 0; u < n; ++u) {
    PacketCount budget = view.queue[static_cast<std::size_t>(u)];
    if (budget <= 0) continue;
    ++active;
    const PacketCount qu = view.queue[static_cast<std::size_t>(u)];

    // list(u): active incident links ordered by increasing declared queue.
    scratch_.clear();
    for (const graph::IncidentLink& link : view.incidence->incident(u)) {
      if (view.active != nullptr && !view.active->active(link.edge)) continue;
      scratch_.push_back(link);
    }
    if (scratch_.empty()) continue;
    if (tie_break_ == TieBreak::kRandomShuffle) {
      std::shuffle(scratch_.begin(), scratch_.end(), rng.engine());
      std::stable_sort(scratch_.begin(), scratch_.end(),
                       [&](const graph::IncidentLink& a,
                           const graph::IncidentLink& b) {
                         return view.declared[static_cast<std::size_t>(
                                    a.neighbor)] <
                                view.declared[static_cast<std::size_t>(
                                    b.neighbor)];
                       });
    } else {
      std::sort(scratch_.begin(), scratch_.end(),
                [&](const graph::IncidentLink& a,
                    const graph::IncidentLink& b) {
                  const auto qa =
                      view.declared[static_cast<std::size_t>(a.neighbor)];
                  const auto qb =
                      view.declared[static_cast<std::size_t>(b.neighbor)];
                  if (qa != qb) return qa < qb;
                  if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                  return a.edge < b.edge;
                });
    }

    for (const graph::IncidentLink& link : scratch_) {
      if (budget <= 0) break;
      // u compares its own true queue against the neighbour's declaration.
      if (qu > view.declared[static_cast<std::size_t>(link.neighbor)]) {
        out.push_back(Transmission{link.edge, u, link.neighbor});
        --budget;
      }
    }
  }
  if (active_nodes_ != nullptr) active_nodes_->add(active);
}

void LggProtocol::register_metrics(obs::MetricRegistry& registry) {
  active_nodes_ = &registry.counter("protocol.active_nodes");
}

}  // namespace lgg::core
