#include "core/lgg_protocol.hpp"

#include <algorithm>

#include "core/profiler.hpp"
#include "obs/registry.hpp"

namespace lgg::core {

std::uint64_t LggProtocol::select_node(
    const StepView& view, NodeId u,
    std::vector<graph::IncidentLink>& scratch,
    std::vector<Transmission>& out) const {
  PacketCount budget = view.queue[static_cast<std::size_t>(u)];
  if (budget <= 0) return 0;
  const PacketCount qu = view.queue[static_cast<std::size_t>(u)];

  // list(u): active incident links ordered by increasing declared queue.
  scratch.clear();
  for (const graph::IncidentLink& link : view.incidence->incident(u)) {
    if (view.active != nullptr && !view.active->active(link.edge)) continue;
    scratch.push_back(link);
  }
  if (scratch.empty()) return 1;
  if (tie_break_ == TieBreak::kRandomShuffle) {
    // The shuffle draws from u's addressed stream, never a shared one, so
    // the tie-break is identical whether u is visited serially or from a
    // shard.
    Rng rng = draw_rng(view.draw_seed, static_cast<std::uint64_t>(view.t),
                       static_cast<std::uint64_t>(StepPhase::kSelection),
                       static_cast<std::uint64_t>(u));
    std::shuffle(scratch.begin(), scratch.end(), rng.engine());
    std::stable_sort(scratch.begin(), scratch.end(),
                     [&](const graph::IncidentLink& a,
                         const graph::IncidentLink& b) {
                       return view.declared[static_cast<std::size_t>(
                                  a.neighbor)] <
                              view.declared[static_cast<std::size_t>(
                                  b.neighbor)];
                     });
  } else {
    std::sort(scratch.begin(), scratch.end(),
              [&](const graph::IncidentLink& a,
                  const graph::IncidentLink& b) {
                const auto qa =
                    view.declared[static_cast<std::size_t>(a.neighbor)];
                const auto qb =
                    view.declared[static_cast<std::size_t>(b.neighbor)];
                if (qa != qb) return qa < qb;
                if (a.neighbor != b.neighbor) return a.neighbor < b.neighbor;
                return a.edge < b.edge;
              });
  }

  for (const graph::IncidentLink& link : scratch) {
    if (budget <= 0) break;
    // u compares its own true queue against the neighbour's declaration.
    if (qu > view.declared[static_cast<std::size_t>(link.neighbor)]) {
      out.push_back(Transmission{link.edge, u, link.neighbor});
      --budget;
    }
  }
  return 1;
}

void LggProtocol::select_transmissions(const StepView& view, Rng&,
                                       std::vector<Transmission>& out) {
  const NodeId n = view.net->node_count();
  std::uint64_t active = 0;
  for (NodeId u = 0; u < n; ++u) {
    active += select_node(view, u, scratch_, out);
  }
  if (active_nodes_ != nullptr) active_nodes_->add(active);
}

std::uint64_t LggProtocol::select_for_nodes(const StepView& view,
                                            std::span<const NodeId> nodes,
                                            std::vector<Transmission>& out) {
  std::vector<graph::IncidentLink> scratch;
  std::uint64_t active = 0;
  for (const NodeId u : nodes) {
    active += select_node(view, u, scratch, out);
  }
  return active;
}

void LggProtocol::note_selection_work(std::uint64_t active) {
  if (active_nodes_ != nullptr) active_nodes_->add(active);
}

void LggProtocol::register_metrics(obs::MetricRegistry& registry) {
  active_nodes_ = &registry.counter("protocol.active_nodes");
}

}  // namespace lgg::core
