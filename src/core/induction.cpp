#include "core/induction.hpp"

#include <algorithm>
#include <queue>

#include "flow/max_flow.hpp"

namespace lgg::core {

namespace {

/// Residual closure of `seed` in a solved extended graph.
std::vector<char> residual_closure(const flow::FlowNetwork& net,
                                   std::vector<char> seen) {
  std::queue<NodeId> bfs;
  for (NodeId v = 0; v < net.node_count(); ++v) {
    if (seen[static_cast<std::size_t>(v)]) bfs.push(v);
  }
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    for (const flow::ArcId a : net.out_arcs(u)) {
      const NodeId v = net.to(a);
      if (net.residual(a) > 0 && !seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        bfs.push(v);
      }
    }
  }
  return seen;
}

InternalCut cut_from_closure(const SdNetwork& net,
                             const std::vector<char>& closure,
                             [[maybe_unused]] NodeId s_star) {
  InternalCut cut;
  const NodeId n = net.node_count();
  cut.side_a.assign(static_cast<std::size_t>(n), 0);
  for (NodeId v = 0; v < n; ++v) {
    if (closure[static_cast<std::size_t>(v)]) {
      cut.side_a[static_cast<std::size_t>(v)] = 1;
      ++cut.a_size;
    } else {
      ++cut.b_size;
    }
  }
  LGG_ASSERT(closure[static_cast<std::size_t>(s_star)]);
  cut.value = net.arrival_rate();
  return cut;
}

}  // namespace

std::optional<InternalCut> find_internal_cut(const SdNetwork& net) {
  net.validate();
  const auto sources = net.source_rates();
  const auto sinks = net.sink_rates();
  flow::ExtendedGraph ext =
      flow::build_extended_graph(net.topology(), sources, sinks);
  const Cap value = flow::solve_max_flow(ext.net, ext.s_star, ext.d_star);
  LGG_REQUIRE(value == net.arrival_rate(),
              "find_internal_cut: network is not feasible");

  // A_min = residual closure of {s*}; then try to grow it around each real
  // node whose closure avoids d* (same construction as cut_location, but
  // returning the witness cut).
  std::vector<char> base(
      static_cast<std::size_t>(ext.net.node_count()), 0);
  base[static_cast<std::size_t>(ext.s_star)] = 1;
  const std::vector<char> a_min = residual_closure(ext.net, base);
  LGG_REQUIRE(!a_min[static_cast<std::size_t>(ext.d_star)],
              "find_internal_cut: flow is not maximum");

  const NodeId n = net.node_count();
  auto real_count = [n](const std::vector<char>& side) {
    NodeId c = 0;
    for (NodeId v = 0; v < n; ++v) c += side[static_cast<std::size_t>(v)] ? 1 : 0;
    return c;
  };
  const NodeId a_min_real = real_count(a_min);
  if (a_min_real >= 1 && n - a_min_real >= 1) {
    return cut_from_closure(net, a_min, ext.s_star);
  }
  for (NodeId x = 0; x < n; ++x) {
    if (a_min[static_cast<std::size_t>(x)]) continue;
    std::vector<char> seed = a_min;
    seed[static_cast<std::size_t>(x)] = 1;
    const std::vector<char> closure = residual_closure(ext.net, seed);
    if (closure[static_cast<std::size_t>(ext.d_star)]) continue;
    const NodeId a_real = real_count(closure);
    if (a_real >= 1 && n - a_real >= 1) {
      return cut_from_closure(net, closure, ext.s_star);
    }
  }
  return std::nullopt;
}

namespace {

/// Extracts the induced sub-network on `keep` (side indicator), promoting
/// border nodes per the Section V-C rules.
struct SideBuild {
  SdNetwork net;
  std::vector<NodeId> to_original;
};

SideBuild build_side(const SdNetwork& net, const std::vector<char>& in_side,
                     bool is_b_side, Cap retention_b) {
  const graph::Multigraph& g = net.topology();
  std::vector<NodeId> to_original;
  std::vector<NodeId> remap(static_cast<std::size_t>(g.node_count()),
                            kInvalidNode);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (in_side[static_cast<std::size_t>(v)]) {
      remap[static_cast<std::size_t>(v)] =
          static_cast<NodeId>(to_original.size());
      to_original.push_back(v);
    }
  }
  graph::Multigraph sub(static_cast<NodeId>(to_original.size()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Endpoints ep = g.endpoints(e);
    if (in_side[static_cast<std::size_t>(ep.u)] &&
        in_side[static_cast<std::size_t>(ep.v)]) {
      sub.add_edge(remap[static_cast<std::size_t>(ep.u)],
                   remap[static_cast<std::size_t>(ep.v)]);
    }
  }
  SdNetwork side(std::move(sub));
  for (const NodeId v : to_original) {
    const NodeSpec& spec = net.spec(v);
    // Links to the far side, with multiplicity.
    Cap border_links = 0;
    for (const graph::IncidentLink& link : g.incident(v)) {
      if (!in_side[static_cast<std::size_t>(link.neighbor)]) ++border_links;
    }
    Cap in = spec.in;
    Cap out = spec.out;
    Cap retention = spec.retention;
    if (is_b_side) {
      // x in X: neighbours in A may push one packet per link per step.
      in += border_links;
    } else {
      // y in Y: the link to B serves as extra extraction capacity, and the
      // piece becomes R_B-generalized.
      out += border_links;
      if (border_links > 0 || in > 0 || out > 0 || retention > 0) {
        retention = std::max(retention, retention_b);
      }
    }
    if (in > 0 || out > 0 || retention > 0) {
      side.set_generalized(remap[static_cast<std::size_t>(v)], in, out,
                           retention);
    }
  }
  return {std::move(side), std::move(to_original)};
}

}  // namespace

CutDecomposition decompose_at_cut(const SdNetwork& net,
                                  const InternalCut& cut, Cap retention_b) {
  LGG_REQUIRE(static_cast<NodeId>(cut.side_a.size()) == net.node_count(),
              "decompose_at_cut: cut size mismatch");
  LGG_REQUIRE(cut.a_size >= 1 && cut.b_size >= 1,
              "decompose_at_cut: cut must have real nodes on both sides");
  LGG_REQUIRE(retention_b >= 0, "decompose_at_cut: retention_b >= 0");
  CutDecomposition out;
  out.cut = cut;
  out.retention_b = retention_b;
  std::vector<char> in_b(cut.side_a.size());
  for (std::size_t i = 0; i < cut.side_a.size(); ++i) {
    in_b[i] = cut.side_a[i] ? 0 : 1;
  }
  SideBuild b = build_side(net, in_b, /*is_b_side=*/true, retention_b);
  out.b_side = std::move(b.net);
  out.b_to_original = std::move(b.to_original);
  SideBuild a = build_side(net, cut.side_a, /*is_b_side=*/false,
                           retention_b);
  out.a_side = std::move(a.net);
  out.a_to_original = std::move(a.to_original);
  return out;
}

bool verify_remark2(const CutDecomposition& decomposition) {
  // D'' non-empty: the A side must contain at least one node whose
  // extraction capacity is positive (a generalized destination).
  return !decomposition.a_side.sinks().empty();
}

bool verify_pieces_feasible(const CutDecomposition& decomposition) {
  const auto check = [](const SdNetwork& side) {
    if (side.sources().empty()) {
      // No injection anywhere: trivially stable, vacuously feasible.
      return true;
    }
    if (side.sinks().empty()) return false;
    return analyze(side).feasible;
  };
  return check(decomposition.b_side) && check(decomposition.a_side);
}

InductionTrace run_induction(const SdNetwork& net, int max_depth) {
  InductionTrace trace;
  struct Item {
    SdNetwork net;
    int depth;
  };
  std::vector<Item> stack;
  stack.push_back({net, 0});
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    LGG_REQUIRE(item.depth <= max_depth,
                "run_induction: recursion exceeded max_depth");
    if (item.net.sources().empty() || item.net.sinks().empty() ||
        item.net.node_count() <= 1) {
      ++trace.leaves;
      trace.largest_leaf = std::max(trace.largest_leaf,
                                    item.net.node_count());
      continue;
    }
    const auto cut = find_internal_cut(item.net);
    if (!cut.has_value()) {
      // Base case: min cuts only at the virtual terminals (V-A / V-B).
      ++trace.leaves;
      trace.largest_leaf = std::max(trace.largest_leaf,
                                    item.net.node_count());
      continue;
    }
    // Any finite retention works for the structural recursion; the paper
    // instantiates R_B with B's (proved) packet-mass bound.
    const Cap retention_b =
        item.net.max_retention() + item.net.arrival_rate() *
                                       static_cast<Cap>(cut->b_size) + 1;
    CutDecomposition dec = decompose_at_cut(item.net, *cut, retention_b);
    LGG_REQUIRE(verify_remark2(dec), "run_induction: Remark 2 violated");
    LGG_REQUIRE(verify_pieces_feasible(dec),
                "run_induction: decomposition lost feasibility");
    LGG_REQUIRE(dec.a_side.node_count() < item.net.node_count() &&
                    dec.b_side.node_count() < item.net.node_count(),
                "run_induction: split did not shrink the instance");
    ++trace.splits;
    stack.push_back({std::move(dec.a_side), item.depth + 1});
    stack.push_back({std::move(dec.b_side), item.depth + 1});
  }
  return trace;
}

}  // namespace lgg::core
