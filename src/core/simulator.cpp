#include "core/simulator.hpp"

#include <algorithm>
#include <map>

namespace lgg::core {

Simulator::Simulator(SdNetwork net, SimulatorOptions options,
                     std::unique_ptr<RoutingProtocol> protocol)
    : net_(std::move(net)),
      options_(options),
      protocol_(protocol ? std::move(protocol)
                         : std::make_unique<LggProtocol>()),
      arrival_(std::make_unique<ExactArrival>()),
      loss_(std::make_unique<NoLoss>()),
      scheduler_(std::make_unique<NoInterference>()),
      dynamics_(std::make_unique<StaticTopology>()),
      incidence_(net_.topology()),
      mask_(net_.topology().edge_count()),
      rng_(options.seed),
      queue_(static_cast<std::size_t>(net_.node_count()), 0),
      declared_(static_cast<std::size_t>(net_.node_count()), 0) {
  net_.validate();
}

void Simulator::set_arrival(std::unique_ptr<ArrivalProcess> arrival) {
  LGG_REQUIRE(arrival != nullptr, "set_arrival: null");
  arrival_ = std::move(arrival);
}

void Simulator::set_loss(std::unique_ptr<LossModel> loss) {
  LGG_REQUIRE(loss != nullptr, "set_loss: null");
  loss_ = std::move(loss);
}

void Simulator::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  LGG_REQUIRE(scheduler != nullptr, "set_scheduler: null");
  scheduler_ = std::move(scheduler);
}

void Simulator::set_dynamics(std::unique_ptr<TopologyDynamics> dynamics) {
  LGG_REQUIRE(dynamics != nullptr, "set_dynamics: null");
  dynamics_ = std::move(dynamics);
}

void Simulator::set_initial_queue(NodeId v, PacketCount q) {
  LGG_REQUIRE(t_ == 0, "set_initial_queue: simulation already started");
  LGG_REQUIRE(net_.topology().valid_node(v), "set_initial_queue: bad node");
  LGG_REQUIRE(q >= 0, "set_initial_queue: negative queue");
  initial_total_ -= queue_[static_cast<std::size_t>(v)];
  queue_[static_cast<std::size_t>(v)] = q;
  initial_total_ += q;
}

PacketCount Simulator::total_packets() const {
  PacketCount total = 0;
  for (const PacketCount q : queue_) total += q;
  return total;
}

double Simulator::network_state() const {
  double state = 0.0;
  for (const PacketCount q : queue_) {
    const auto qd = static_cast<double>(q);
    state += qd * qd;
  }
  return state;
}

PacketCount Simulator::max_queue() const {
  PacketCount best = 0;
  for (const PacketCount q : queue_) best = std::max(best, q);
  return best;
}

bool Simulator::conserves_packets() const {
  return initial_total_ + totals_.injected - totals_.extracted -
             totals_.lost ==
         total_packets();
}

void Simulator::resolve_link_conflicts(std::vector<char>& keep) {
  // Detect both directions of one edge being kept; keep the transmission
  // realizing the larger true queue drop (ties: lower from-id wins).
  std::map<EdgeId, std::size_t> first_use;
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (!keep[i]) continue;
    const auto [it, inserted] = first_use.emplace(txs_[i].edge, i);
    if (inserted) continue;
    const std::size_t j = it->second;  // earlier kept use of this edge
    if (txs_[j].from == txs_[i].from) continue;  // same direction is the
                                                 // protocol's contract to
                                                 // avoid; checked elsewhere
    const auto drop = [&](const Transmission& tx) {
      return queue_[static_cast<std::size_t>(tx.from)] -
             queue_[static_cast<std::size_t>(tx.to)];
    };
    std::size_t loser;
    if (drop(txs_[i]) > drop(txs_[j]) ||
        (drop(txs_[i]) == drop(txs_[j]) && txs_[i].from < txs_[j].from)) {
      loser = j;
      it->second = i;
    } else {
      loser = i;
    }
    keep[loser] = 0;
  }
}

StepStats Simulator::step() {
  StepStats stats;
  const NodeId n = net_.node_count();

  // 1. Topology dynamics.
  if (dynamics_->evolve(t_, net_, mask_, rng_)) {
    ++topology_version_;
    stats.topology_changed = true;
  }

  // 2. Injection.
  if (observer_ != nullptr) pre_injection_ = queue_;
  for (NodeId v = 0; v < n; ++v) {
    const NodeSpec& spec = net_.spec(v);
    if (spec.in <= 0) continue;
    const PacketCount a = arrival_->packets(v, spec.in, t_, rng_);
    LGG_REQUIRE(a >= 0, "arrival process returned a negative count");
    queue_[static_cast<std::size_t>(v)] += a;
    stats.injected += a;
  }

  // 3. Declarations.
  for (NodeId v = 0; v < n; ++v) {
    declared_[static_cast<std::size_t>(v)] =
        declared_queue(net_.spec(v), queue_[static_cast<std::size_t>(v)],
                       options_.declaration_policy, rng_);
  }

  const StepView view{&net_,      &incidence_, &mask_,
                      queue_,     declared_,   t_,
                      topology_version_};

  // 4. Protocol proposes transmissions.
  txs_.clear();
  protocol_->select_transmissions(view, rng_, txs_);
  stats.proposed = static_cast<PacketCount>(txs_.size());
  if (options_.check_contract) {
    const std::string err = check_transmission_contract(view, txs_);
    LGG_REQUIRE(err.empty(), "protocol contract violated: " + err);
  }

  // 5. Interference scheduling.
  keep_.assign(txs_.size(), 1);
  scheduler_->schedule(view, txs_, rng_, keep_);
  stats.suppressed =
      static_cast<PacketCount>(std::count(keep_.begin(), keep_.end(), 0));

  // 6. Link-conflict resolution: when both directions of one link are
  // scheduled, only one can use the link ("each link can transmit at most
  // 1 packet").  The loser's packet stays in its queue.
  if (options_.link_conflict == LinkConflictPolicy::kDropLower) {
    std::vector<char> keep_before = keep_;
    resolve_link_conflicts(keep_);
    for (std::size_t i = 0; i < txs_.size(); ++i) {
      if (keep_before[i] && !keep_[i]) ++stats.conflicted;
    }
  }

  // 7. Losses + application.  Every kept transmission removes a packet from
  // the sender; only un-lost ones arrive.
  if (options_.extraction_basis == ExtractionBasis::kSnapshot ||
      observer_ != nullptr) {
    snapshot_ = queue_;  // step-start (post-injection) queue for step 8
  }
  lost_.assign(txs_.size(), 0);
  loss_->mark_losses(view, txs_, rng_, lost_);
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (!keep_[i]) continue;
    const Transmission& tx = txs_[i];
    auto& from_q = queue_[static_cast<std::size_t>(tx.from)];
    LGG_REQUIRE(from_q > 0, "transmission from an empty queue");
    --from_q;
    ++stats.sent;
    if (lost_[i]) {
      ++stats.lost;
    } else {
      ++queue_[static_cast<std::size_t>(tx.to)];
      ++stats.delivered;
    }
  }

  // 8. Extraction.
  for (NodeId v = 0; v < n; ++v) {
    const NodeSpec& spec = net_.spec(v);
    if (spec.out <= 0) continue;
    auto& q = queue_[static_cast<std::size_t>(v)];
    PacketCount amount = 0;
    if (options_.extraction_basis == ExtractionBasis::kSnapshot) {
      // The paper's literal min{out(d), q_t(d)} with q_t the step-start
      // (post-injection) snapshot, clamped to what the queue holds now.
      amount = extraction_amount(
          spec, snapshot_[static_cast<std::size_t>(v)],
          options_.extraction_policy, rng_);
      amount = std::min(amount, q);
    } else {
      amount = extraction_amount(spec, q, options_.extraction_policy, rng_);
    }
    LGG_ASSERT(amount >= 0 && amount <= q);
    q -= amount;
    stats.extracted += amount;
  }

  totals_.add(stats);
  if (observer_ != nullptr) {
    StepRecord record;
    record.net = &net_;
    record.t = t_;
    record.before_injection = pre_injection_;
    record.at_selection = snapshot_;
    record.declared = declared_;
    record.after_step = queue_;
    record.transmissions = txs_;
    record.kept = keep_;
    record.lost = lost_;
    record.stats = stats;
    observer_->on_step(record);
  }
  ++t_;
  return stats;
}

void Simulator::run(TimeStep steps, MetricsRecorder* recorder) {
  LGG_REQUIRE(steps >= 0, "run: negative step count");
  for (TimeStep i = 0; i < steps; ++i) {
    const StepStats stats = step();
    if (recorder != nullptr) {
      recorder->observe(t_ - 1, queue_, stats);
    }
  }
}

}  // namespace lgg::core
