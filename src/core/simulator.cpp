#include "core/simulator.hpp"

#include <algorithm>
#include <limits>

#include "core/parallel_step.hpp"

namespace lgg::core {

Simulator::Simulator(SdNetwork net, SimulatorOptions options,
                     std::unique_ptr<RoutingProtocol> protocol)
    : net_(std::move(net)),
      options_(options),
      protocol_(protocol ? std::move(protocol)
                         : std::make_unique<LggProtocol>()),
      arrival_(std::make_unique<ExactArrival>()),
      loss_(std::make_unique<NoLoss>()),
      scheduler_(std::make_unique<NoInterference>()),
      dynamics_(std::make_unique<StaticTopology>()),
      incidence_(net_.topology()),
      mask_(net_.topology().edge_count()),
      queue_(static_cast<std::size_t>(net_.node_count()), 0),
      declared_(static_cast<std::size_t>(net_.node_count()), 0) {
  net_.validate();
}

Simulator::~Simulator() = default;

void Simulator::enable_sharding(std::uint32_t shards, std::size_t threads) {
  LGG_REQUIRE(shards >= 1, "enable_sharding: shards >= 1");
  engine_ = std::make_unique<ParallelStepEngine>(*this, shards, threads);
}

void Simulator::disable_sharding() { engine_.reset(); }

std::uint32_t Simulator::shard_count() const {
  return engine_ != nullptr ? engine_->shard_count() : 1;
}

void Simulator::set_arrival(std::unique_ptr<ArrivalProcess> arrival) {
  LGG_REQUIRE(arrival != nullptr, "set_arrival: null");
  arrival_ = std::move(arrival);
  if (telemetry_ != nullptr) {
    arrival_->register_metrics(telemetry_->registry());
  }
}

void Simulator::set_loss(std::unique_ptr<LossModel> loss) {
  LGG_REQUIRE(loss != nullptr, "set_loss: null");
  loss_ = std::move(loss);
}

void Simulator::set_scheduler(std::unique_ptr<Scheduler> scheduler) {
  LGG_REQUIRE(scheduler != nullptr, "set_scheduler: null");
  scheduler_ = std::move(scheduler);
  if (telemetry_ != nullptr) {
    scheduler_->register_metrics(telemetry_->registry());
  }
}

void Simulator::set_dynamics(std::unique_ptr<TopologyDynamics> dynamics) {
  LGG_REQUIRE(dynamics != nullptr, "set_dynamics: null");
  dynamics_ = std::move(dynamics);
}

void Simulator::set_faults(std::unique_ptr<FaultInjector> faults) {
  if (faults != nullptr) faults->schedule().validate(net_);
  faults_ = std::move(faults);
  if (telemetry_ != nullptr && faults_ != nullptr) {
    faults_->register_metrics(telemetry_->registry());
  }
}

void Simulator::set_telemetry(obs::Telemetry* telemetry) {
  telemetry_ = telemetry;
  drift_ = nullptr;  // re-evaluated at the top of every step
  topology_gauge_ = nullptr;
  if (telemetry_ == nullptr) return;
  telemetry_->bind(net_.node_count());
  register_component_metrics();
}

void Simulator::set_tracer(obs::SpanTracer* tracer) {
  tracer_ = tracer;
  // Lane 0 is the main thread's; the shard engine grows the set to one
  // lane per shard at the top of its step.
  if (tracer_ != nullptr) tracer_->ensure_lanes(1);
}

void Simulator::set_admission(AdmissionController* admission) {
  admission_ = admission;
  if (telemetry_ != nullptr && admission_ != nullptr) {
    admission_->register_metrics(telemetry_->registry());
  }
}

void Simulator::register_component_metrics() {
  obs::MetricRegistry& registry = telemetry_->registry();
  topology_gauge_ = &registry.gauge("sim.topology_version");
  protocol_->register_metrics(registry);
  arrival_->register_metrics(registry);
  scheduler_->register_metrics(registry);
  if (faults_ != nullptr) faults_->register_metrics(registry);
  if (admission_ != nullptr) admission_->register_metrics(registry);
}

void Simulator::set_initial_queue(NodeId v, PacketCount q) {
  LGG_REQUIRE(t_ == 0, "set_initial_queue: simulation already started");
  LGG_REQUIRE(net_.topology().valid_node(v), "set_initial_queue: bad node");
  LGG_REQUIRE(q >= 0, "set_initial_queue: negative queue");
  const PacketCount old = queue_[static_cast<std::size_t>(v)];
  initial_total_ += q - old;
  // Pre-run seeding: drift attribution is inactive outside step(), so the
  // cause is never recorded.
  apply_queue_delta(v, q - old, obs::DriftCause::kInjection);
}

PacketCount Simulator::max_queue() const {
  PacketCount best = 0;
  for (const PacketCount q : queue_) best = std::max(best, q);
  return best;
}

bool Simulator::conserves_packets() const {
  return initial_total_ + totals_.injected - totals_.extracted -
             totals_.lost - totals_.crash_wiped ==
         total_packets();
}

void Simulator::audit_counters() const {
  PacketCount total = 0;
  detail::QuadAccum sq = 0;
  for (const PacketCount q : queue_) {
    total += q;
    sq += detail::square(q);
  }
  LGG_ASSERT(total == sum_q_);
  LGG_ASSERT(sq == sum_sq_);
}

std::size_t resolve_link_conflicts(std::span<const Transmission> txs,
                                   std::span<const PacketCount> queue,
                                   std::vector<char>& keep,
                                   LinkConflictScratch& scratch) {
  // Detect both directions of one edge being kept; keep the transmission
  // realizing the larger true queue drop (ties: lower from-id wins).
  if (scratch.current == std::numeric_limits<std::uint32_t>::max()) {
    // Epoch wraparound: stale stamps could alias the new epoch; start over.
    std::fill(scratch.stamp.begin(), scratch.stamp.end(), 0);
    scratch.current = 0;
  }
  const std::uint32_t epoch = ++scratch.current;
  std::size_t dropped = 0;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (!keep[i]) continue;
    const auto e = static_cast<std::size_t>(txs[i].edge);
    if (e >= scratch.stamp.size()) {
      scratch.stamp.resize(e + 1, 0);
      scratch.first_use.resize(e + 1, 0);
    }
    if (scratch.stamp[e] != epoch) {
      scratch.stamp[e] = epoch;
      scratch.first_use[e] = static_cast<std::uint32_t>(i);
      continue;
    }
    const std::size_t j = scratch.first_use[e];  // earlier kept use
    if (txs[j].from == txs[i].from) continue;  // same direction is the
                                               // protocol's contract to
                                               // avoid; checked elsewhere
    const auto drop = [&](const Transmission& tx) {
      return queue[static_cast<std::size_t>(tx.from)] -
             queue[static_cast<std::size_t>(tx.to)];
    };
    std::size_t loser;
    if (drop(txs[i]) > drop(txs[j]) ||
        (drop(txs[i]) == drop(txs[j]) && txs[i].from < txs[j].from)) {
      loser = j;
      scratch.first_use[e] = static_cast<std::uint32_t>(i);
    } else {
      loser = i;
    }
    keep[loser] = 0;
    ++dropped;
  }
  return dropped;
}

obs::Telemetry* Simulator::arm_telemetry() {
  // Telemetry arms once per step: with no sink and no flight recorder the
  // session has nothing to feed, so drift_ stays null and every recording
  // site below collapses to one untaken branch.
  obs::Telemetry* const tel =
      (telemetry_ != nullptr && telemetry_->armed()) ? telemetry_ : nullptr;
  drift_ = tel != nullptr ? &tel->drift() : nullptr;
  if (tel != nullptr) tel->begin_step();
  return tel;
}

const graph::EdgeMask* Simulator::phase_dynamics(StepStats& stats,
                                                 obs::Telemetry* tel) {
  // Topology dynamics, then fault transitions.  Faults fold into the
  // dynamics phase: both mutate which links exist this step.
  {
    Rng rng = phase_rng(StepPhase::kDynamics);
    if (dynamics_->evolve(t_, net_, mask_, rng)) {
      ++topology_version_;
      stats.topology_changed = true;
    }
  }
  const graph::EdgeMask* active_mask = &mask_;
  churn_delta_.clear();
  if (faults_ != nullptr) {
    wiped_scratch_.clear();
    const auto wipe = [&](NodeId v) {
      const PacketCount q = queue_[static_cast<std::size_t>(v)];
      if (q > 0) {
        // Departing/crashing queues leave the network as crash_wiped so
        // the conservation audit balances.
        apply_queue_delta(v, -q, obs::DriftCause::kCrashWiped);
        stats.crash_wiped += q;
        if (tel != nullptr) wiped_scratch_.emplace_back(v, q);
      }
    };
    // Scheduled churn fires before the windowed fault transitions so the
    // rest of the step (and the injector's own surge/outage windows) sees
    // the post-churn roles.
    const bool churned = faults_->apply_churn(t_, net_, churn_delta_, wipe);
    if (churned) {
      ++topology_version_;
      stats.topology_changed = true;
      // Role lists may have changed (node_leave/join, nudges through
      // zero); the shard engine re-derives its per-shard role lists so
      // sharded runs keep visiting exactly the serial engine's nodes.
      if (engine_ != nullptr) engine_->refresh_roles(net_);
      if (tel != nullptr) record_churn_flight_events(tel);
    }
    const FaultInjector::StepEffects effects = faults_->begin_step(
        t_, net_, wipe);
    if (tel != nullptr) {
      for (const NodeId v : faults_->went_down()) {
        PacketCount wiped = 0;
        for (const auto& [w, q] : wiped_scratch_) {
          if (w == v) wiped = q;
        }
        tel->record_event(
            {t_, obs::EventKind::kNodeDown, v, kInvalidNode, wiped});
      }
      for (const NodeId v : faults_->came_up()) {
        tel->record_event({t_, obs::EventKind::kNodeUp, v, kInvalidNode, 0});
      }
    }
    if (effects.down_set_changed) {
      // Protocol caches key on the topology version; a down-set change
      // alters the effective edge set just like a dynamics event.
      ++topology_version_;
      stats.topology_changed = true;
    }
    if (effects.any_down || faults_->churn_overlay_active()) {
      effective_mask_ = mask_;
      faults_->apply_to_mask(net_, effective_mask_);
      active_mask = &effective_mask_;
    }
  }
  return active_mask;
}

void Simulator::arrival_begin_step() {
  // The phase-global injection stream is reserved for the arrival process:
  // per-source draws are addressed per node, so a begin_step draw can
  // never shift any source's own stream (and skipping it is equally
  // stream-neutral for processes that ignore the hook).
  Rng rng = phase_rng(StepPhase::kInjection);
  ArrivalContext ctx;
  ctx.t = t_;
  ctx.net = &net_;
  ctx.sources = net_.sources();
  ctx.queues = queue_;
  ctx.rng = &rng;
  arrival_->begin_step(ctx);
}

void Simulator::phase_injection_serial(StepStats& stats, obs::Telemetry* tel,
                                       const graph::EdgeMask* active_mask) {
  // Injection — only source nodes (in > 0) can inject; down sources
  // don't, surging sources inject extra on top of the arrival process.
  // An attached admission controller sees the pre-injection potential and
  // may shed part of each source's offered packets; shed packets are never
  // injected, so the conservation audit is untouched.  Each source draws
  // from its own addressed stream, so the draw is independent of admission
  // and of every other source.
  int admission_mode_before = 0;
  if (admission_ != nullptr) {
    admission_mode_before = admission_->mode();
    admission_->begin_step({t_, network_state(), topology_version_, &net_,
                            active_mask,
                            churn_delta_.empty() ? nullptr : &churn_delta_});
  }
  std::uint64_t visits = 0;
  // `draw` distinguishes real arrival-process visits from surge-only
  // visits on the sparse path, where the process guarantees a zero count
  // for unlisted sources and its packets() must not be consulted.
  const auto inject_one = [&](NodeId v, bool draw) {
    ++visits;
    const NodeSpec& spec = net_.spec(v);
    PacketCount a = 0;
    if (draw) {
      Rng rng =
          phase_rng(StepPhase::kInjection, static_cast<std::uint64_t>(v));
      a = arrival_->packets(v, spec.in, t_, rng);
      LGG_REQUIRE(a >= 0, "arrival process returned a negative count");
    }
    if (faults_ != nullptr && faults_->node_down(v)) return;
    const PacketCount extra =
        faults_ != nullptr ? faults_->surge_extra(v) : 0;
    PacketCount offered = a + extra;
    if (admission_ != nullptr) {
      const PacketCount admitted = admission_->admit(v, spec.in, offered);
      LGG_REQUIRE(admitted >= 0 && admitted <= offered,
                  "admission controller returned a count outside [0, offered]");
      stats.shed += offered - admitted;
      offered = admitted;
    }
    apply_queue_delta(v, offered, obs::DriftCause::kInjection);
    stats.injected += offered;
  };
  const std::vector<NodeId>* active = arrival_->active_sources();
  if (active == nullptr) {
    for (const NodeId v : net_.sources()) inject_one(v, /*draw=*/true);
  } else {
    // Sparse path: the process precomputed (in begin_step) the only
    // sources that can inject this step.  Every skipped source would have
    // contributed a zero offer, and a zero offer is a strict no-op for
    // queueing, stats, and admission accounting (the governor's credit
    // and fairness state are untouched by admit(v, in, 0)), so the
    // trajectory is bitwise identical to the dense loop.
    for (const NodeId v : *active) inject_one(v, /*draw=*/true);
    if (faults_ != nullptr) {
      for (const NodeId v : faults_->surging_sources()) {
        // Surges ride on top of the arrival process even when it skips
        // the node.  Only current sources count (a churn nudge may have
        // zeroed in(v), which removes v from the dense loop too).
        if (net_.spec(v).in <= 0) continue;
        if (std::binary_search(active->begin(), active->end(), v)) continue;
        inject_one(v, /*draw=*/false);
      }
    }
  }
  last_injection_visits_ = visits;
  if (admission_ != nullptr && tel != nullptr &&
      admission_->mode() != admission_mode_before) {
    tel->record_event({t_, obs::EventKind::kGovernorMode, kInvalidNode,
                       kInvalidNode,
                       static_cast<PacketCount>(admission_->mode())});
  }
}

std::span<const PacketCount> Simulator::phase_declarations(
    std::uint64_t& work) {
  // Declarations.  Only retention nodes may deviate from their true queue,
  // and only under a lying policy, so every case needs at most the
  // retention-node loop (classical nodes are forced truthful and, under
  // kRandom, their addressed draw would be uniform over [0, 0] — skipping
  // it cannot shift any other node's stream):
  //   * truthful         — q'_t == q_t for every node; alias the queue.
  //   * declare-R / zero — deterministic; copy then patch retention nodes.
  //   * random           — copy, then per-node addressed draws.
  std::span<const PacketCount> declared_view = declared_;
  switch (options_.declaration_policy) {
    case DeclarationPolicy::kTruthful:
      declared_view = queue_;
      break;
    case DeclarationPolicy::kDeclareR:
    case DeclarationPolicy::kDeclareZero: {
      declared_ = queue_;
      Rng rng = phase_rng(StepPhase::kDeclaration);  // never drawn from
      for (const NodeId v : net_.retention_nodes()) {
        declared_[static_cast<std::size_t>(v)] =
            declared_queue(net_.spec(v), queue_[static_cast<std::size_t>(v)],
                           options_.declaration_policy, rng);
      }
      work += net_.retention_nodes().size();
      break;
    }
    case DeclarationPolicy::kRandom: {
      declared_ = queue_;
      for (const NodeId v : net_.retention_nodes()) {
        Rng rng = phase_rng(StepPhase::kDeclaration,
                            static_cast<std::uint64_t>(v));
        declared_[static_cast<std::size_t>(v)] =
            declared_queue(net_.spec(v), queue_[static_cast<std::size_t>(v)],
                           options_.declaration_policy, rng);
      }
      work += net_.retention_nodes().size();
      break;
    }
  }
  // Byzantine faults overwrite the chosen declarations.  The truthful fast
  // path aliases the live queue, so corruption forces a copy first.
  if (faults_ != nullptr &&
      !faults_->byzantine_declarations().empty()) {
    if (declared_view.data() == queue_.data()) {
      declared_ = queue_;
      declared_view = declared_;
    }
    for (const auto& [v, value] : faults_->byzantine_declarations()) {
      declared_[static_cast<std::size_t>(v)] = value;
      ++work;
    }
  }
  return declared_view;
}

void Simulator::record_churn_flight_events(obs::Telemetry* tel) {
  // Called before begin_step's crash wipes, so wiped_scratch_ holds only
  // the departing-node wipes when the node_leave counts are looked up.
  for (const auto& ec : churn_delta_.edges) {
    const auto [u, v] = net_.topology().endpoints(ec.edge);
    tel->record_event({t_,
                       ec.active ? obs::EventKind::kEdgeUp
                                 : obs::EventKind::kEdgeDown,
                       u, v, static_cast<std::int64_t>(ec.edge)});
  }
  for (const NodeId v : churn_delta_.left) {
    PacketCount wiped = 0;
    for (const auto& [w, q] : wiped_scratch_) {
      if (w == v) wiped = q;
    }
    tel->record_event({t_, obs::EventKind::kNodeLeave, v, kInvalidNode,
                       wiped});
  }
  for (const NodeId v : churn_delta_.joined) {
    tel->record_event({t_, obs::EventKind::kNodeJoin, v, kInvalidNode, 0});
  }
  for (const auto& rc : churn_delta_.rates) {
    // Joins/leaves already carry their own events; kRateChange covers the
    // nudges (and the rate legs of join/leave for telemetry consumers that
    // only track specs).
    const std::int64_t packed =
        (static_cast<std::int64_t>(rc.after.in) << 32) |
        (static_cast<std::int64_t>(rc.after.out) & 0xffffffff);
    tel->record_event(
        {t_, obs::EventKind::kRateChange, rc.node, kInvalidNode, packed});
  }
}

void Simulator::record_tx_flight_events(obs::Telemetry* tel) {
  if (tel == nullptr || tel->flight() == nullptr) return;
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    const Transmission& tx = txs_[i];
    const obs::EventKind kind = !keep_[i] ? obs::EventKind::kDrop
                                : lost_[i] ? obs::EventKind::kLoss
                                           : obs::EventKind::kSend;
    tel->record_event(
        {t_, kind, tx.from, tx.to, static_cast<std::int64_t>(tx.edge)});
  }
}

void Simulator::step_epilogue(StepStats& stats, obs::Telemetry* tel,
                              std::span<const PacketCount> declared_view) {
  totals_.add(stats);
#ifndef NDEBUG
  audit_counters();
#endif
  if (topology_gauge_ != nullptr) {
    topology_gauge_->set(static_cast<double>(topology_version_));
  }
  if (tel != nullptr) {
    obs::StepSample sample;
    sample.t = t_;
    sample.potential = network_state();
    sample.total_packets = total_packets();
    // max_queue is an O(n) scan; only pay it on snapshot steps.
    if (tel->snapshot_due(t_)) sample.max_queue = max_queue();
    sample.injected = stats.injected;
    sample.proposed = stats.proposed;
    sample.suppressed = stats.suppressed;
    sample.conflicted = stats.conflicted;
    sample.sent = stats.sent;
    sample.lost = stats.lost;
    sample.delivered = stats.delivered;
    sample.extracted = stats.extracted;
    sample.crash_wiped = stats.crash_wiped;
    sample.shed = stats.shed;
    sample.queues = queue_;
    tel->end_step(sample);
  }
  if (observer_ != nullptr) {
    StepRecord record;
    record.net = &net_;
    record.t = t_;
    record.before_injection = pre_injection_;
    record.at_selection = snapshot_;
    // When declared_view still aliases queue_ (truthful, no Byzantine
    // corruption), phases 7–8 have since mutated it; the declarations
    // equalled the post-injection snapshot, which is what snapshot_
    // preserved.
    record.declared = declared_view.data() == queue_.data()
                          ? std::span<const PacketCount>(snapshot_)
                          : declared_view;
    record.after_step = queue_;
    record.transmissions = txs_;
    record.kept = keep_;
    record.lost = lost_;
    record.stats = stats;
    observer_->on_step(record);
  }
  ++t_;
}

StepStats Simulator::step() {
  if (engine_ != nullptr) return engine_->step(*this);
  return step_serial();
}

StepStats Simulator::step_serial() {
  StepStats stats;
  obs::Telemetry* const tel = arm_telemetry();

  // Phase timing: two clock reads per phase when a profiler or tracer is
  // attached, nothing otherwise.
  StepProfiler* const prof = profiler_;
  obs::SpanTracer* const trc = tracer_;
  StepProfiler::Clock::time_point mark{};
  if (prof != nullptr || trc != nullptr) mark = StepProfiler::Clock::now();
  const auto lap = [&](StepPhase phase, std::uint64_t items) {
    if (prof == nullptr && trc == nullptr) return;
    const auto now = StepProfiler::Clock::now();
    const auto nanos = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - mark)
            .count());
    if (prof != nullptr) prof->record(phase, nanos, items);
    if (trc != nullptr) {
      trc->lane(0).record({static_cast<std::uint64_t>(t_),
                           trc->since_epoch(mark), nanos,
                           obs::current_thread_index(),
                           static_cast<std::uint16_t>(phase),
                           obs::kSerialShard});
    }
    mark = now;
  };

  // 1. Topology dynamics + fault transitions.
  const graph::EdgeMask* active_mask = phase_dynamics(stats, tel);
  lap(StepPhase::kDynamics, stats.topology_changed ? 1 : 0);

  // 2. Injection.
  if (observer_ != nullptr) pre_injection_ = queue_;
  arrival_begin_step();
  phase_injection_serial(stats, tel, active_mask);
  lap(StepPhase::kInjection, static_cast<std::uint64_t>(stats.injected));

  // 3. Declarations.
  std::uint64_t declaration_work = 0;
  const std::span<const PacketCount> declared_view =
      phase_declarations(declaration_work);
  lap(StepPhase::kDeclaration, declaration_work);

  const StepView view{&net_,      &incidence_,   active_mask,
                      queue_,     declared_view, t_,
                      topology_version_, options_.seed};

  // 4. Protocol proposes transmissions.  Locally selecting protocols draw
  // only addressed streams; the phase-global stream covers baselines.
  txs_.clear();
  {
    Rng rng = phase_rng(StepPhase::kSelection);
    protocol_->select_transmissions(view, rng, txs_);
  }
  stats.proposed = static_cast<PacketCount>(txs_.size());
  if (options_.check_contract) {
    const std::string err = check_transmission_contract(view, txs_);
    LGG_REQUIRE(err.empty(), "protocol contract violated: " + err);
  }
  lap(StepPhase::kSelection, static_cast<std::uint64_t>(stats.proposed));

  // 5. Interference scheduling.
  keep_.assign(txs_.size(), 1);
  {
    Rng rng = phase_rng(StepPhase::kScheduling);
    scheduler_->schedule(view, txs_, rng, keep_);
  }
  stats.suppressed =
      static_cast<PacketCount>(std::count(keep_.begin(), keep_.end(), 0));
  lap(StepPhase::kScheduling, static_cast<std::uint64_t>(stats.suppressed));

  // 6. Link-conflict resolution: when both directions of one link are
  // scheduled, only one can use the link ("each link can transmit at most
  // 1 packet").  The loser's packet stays in its queue.
  if (options_.link_conflict == LinkConflictPolicy::kDropLower) {
    stats.conflicted = static_cast<PacketCount>(
        resolve_link_conflicts(txs_, queue_, keep_, conflict_scratch_));
  }
  lap(StepPhase::kConflict, static_cast<std::uint64_t>(stats.conflicted));

  // 7. Losses + application.  Every kept transmission removes a packet from
  // the sender; only un-lost ones arrive.
  if (options_.extraction_basis == ExtractionBasis::kSnapshot ||
      observer_ != nullptr) {
    snapshot_ = queue_;  // step-start (post-injection) queue for step 8
  }
  lost_.assign(txs_.size(), 0);
  {
    Rng rng = phase_rng(StepPhase::kLossApply);
    loss_->mark_losses(view, txs_, rng, lost_);
  }
  for (std::size_t i = 0; i < txs_.size(); ++i) {
    if (!keep_[i]) continue;
    const Transmission& tx = txs_[i];
    LGG_REQUIRE(queue_[static_cast<std::size_t>(tx.from)] > 0,
                "transmission from an empty queue");
    // A lost packet leaves the network at the sender, so its decrement is
    // a kLoss contribution; a delivered packet's sender/receiver pair are
    // both kForwarding.
    apply_queue_delta(
        tx.from, -1,
        lost_[i] ? obs::DriftCause::kLoss : obs::DriftCause::kForwarding);
    ++stats.sent;
    if (lost_[i]) {
      ++stats.lost;
    } else {
      apply_queue_delta(tx.to, 1, obs::DriftCause::kForwarding);
      ++stats.delivered;
    }
  }
  record_tx_flight_events(tel);
  lap(StepPhase::kLossApply, static_cast<std::uint64_t>(stats.sent));

  // 8. Extraction — only sink nodes (out > 0) can extract; down or outaged
  // sinks behave as out(d) = 0 this step.
  for (const NodeId v : net_.sinks()) {
    if (faults_ != nullptr &&
        (faults_->node_down(v) || faults_->sink_out(v))) {
      continue;
    }
    const NodeSpec& spec = net_.spec(v);
    const PacketCount q = queue_[static_cast<std::size_t>(v)];
    Rng rng = phase_rng(StepPhase::kExtraction, static_cast<std::uint64_t>(v));
    PacketCount amount = 0;
    if (options_.extraction_basis == ExtractionBasis::kSnapshot) {
      // The paper's literal min{out(d), q_t(d)} with q_t the step-start
      // (post-injection) snapshot, clamped to what the queue holds now.
      amount = extraction_amount(
          spec, snapshot_[static_cast<std::size_t>(v)],
          options_.extraction_policy, rng);
      amount = std::min(amount, q);
    } else {
      amount = extraction_amount(spec, q, options_.extraction_policy, rng);
    }
    LGG_ASSERT(amount >= 0 && amount <= q);
    apply_queue_delta(v, -amount, obs::DriftCause::kExtraction);
    stats.extracted += amount;
  }
  lap(StepPhase::kExtraction, static_cast<std::uint64_t>(stats.extracted));
  if (prof != nullptr) prof->finish_step();

  step_epilogue(stats, tel, declared_view);
  return stats;
}

void Simulator::run(TimeStep steps, MetricsRecorder* recorder) {
  LGG_REQUIRE(steps >= 0, "run: negative step count");
  for (TimeStep i = 0; i < steps; ++i) {
    const StepStats stats = step();
    if (recorder != nullptr) {
      recorder->observe(t_ - 1, queue_, stats, total_packets(),
                        network_state());
    }
  }
}

}  // namespace lgg::core
