// Per-step accounting and trajectory recording.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace lgg::core {

/// What happened in one synchronous step.
struct StepStats {
  PacketCount injected = 0;    ///< packets added at sources
  PacketCount proposed = 0;    ///< transmissions proposed by the protocol
  PacketCount suppressed = 0;  ///< removed by the interference scheduler
  PacketCount conflicted = 0;  ///< dropped by link-conflict resolution
  PacketCount sent = 0;        ///< packets that left a queue
  PacketCount lost = 0;        ///< sent but never arrived (loss model +
                               ///< conflict drops)
  PacketCount delivered = 0;   ///< sent and arrived at the far endpoint
  PacketCount extracted = 0;   ///< removed by sinks
  PacketCount crash_wiped = 0; ///< destroyed by wipe-mode node crashes
                               ///< (core/faults.hpp)
  PacketCount shed = 0;        ///< offered but not admitted (core/admission
                               ///< gating); never injected, so excluded from
                               ///< the conservation balance
  bool topology_changed = false;
};

/// Running totals over a simulation.
struct CumulativeStats {
  PacketCount injected = 0;
  PacketCount proposed = 0;
  PacketCount suppressed = 0;
  PacketCount conflicted = 0;
  PacketCount sent = 0;
  PacketCount lost = 0;
  PacketCount delivered = 0;
  PacketCount extracted = 0;
  PacketCount crash_wiped = 0;
  PacketCount shed = 0;
  TimeStep steps = 0;

  void add(const StepStats& s) {
    injected += s.injected;
    proposed += s.proposed;
    suppressed += s.suppressed;
    conflicted += s.conflicted;
    sent += s.sent;
    lost += s.lost;
    delivered += s.delivered;
    extracted += s.extracted;
    crash_wiped += s.crash_wiped;
    shed += s.shed;
    ++steps;
  }
};

/// Records the trajectory a stability analysis needs: the network state
/// P_t = Σ q², the total stored packets, and the max queue, per step.
class MetricsRecorder {
 public:
  /// When record_queue_traces is true, full per-node queue vectors are kept
  /// (memory ~ n per step).
  explicit MetricsRecorder(bool record_queue_traces = false)
      : record_queues_(record_queue_traces) {}

  /// Full-scan variant: derives Σq and Σq² from the queue vector.
  void observe(TimeStep t, std::span<const PacketCount> queues,
               const StepStats& stats);

  /// O(1)-aggregate variant: the caller supplies the incrementally
  /// maintained Σq and Σq² (the simulator's total_packets() /
  /// network_state()); only the max still scans the queues.
  void observe(TimeStep t, std::span<const PacketCount> queues,
               const StepStats& stats, PacketCount total_packets,
               double network_state);

  [[nodiscard]] const std::vector<double>& network_state() const {
    return network_state_;
  }
  [[nodiscard]] const std::vector<double>& total_packets() const {
    return total_packets_;
  }
  [[nodiscard]] const std::vector<double>& max_queue() const {
    return max_queue_;
  }
  [[nodiscard]] const std::vector<StepStats>& steps() const { return steps_; }
  [[nodiscard]] const std::vector<std::vector<PacketCount>>& queue_traces()
      const {
    return queue_traces_;
  }
  [[nodiscard]] std::size_t size() const { return network_state_.size(); }

 private:
  bool record_queues_;
  std::vector<double> network_state_;
  std::vector<double> total_packets_;
  std::vector<double> max_queue_;
  std::vector<StepStats> steps_;
  std::vector<std::vector<PacketCount>> queue_traces_;
};

}  // namespace lgg::core
