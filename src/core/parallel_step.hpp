// The graph-partitioned shard engine behind Simulator::enable_sharding.
//
// One step runs the same eight phases as the serial engine, with the
// node-local phases fanned out over a ShardPlan on a thread pool:
//
//   1. dynamics + faults        serial   (mutates the shared edge mask)
//   2. injection                sharded  (serial when admission control or
//                                         a stateful arrival forces order)
//   3. declarations             serial   (O(retention nodes), cheap)
//   4. selection                sharded  (protocols with local_selection;
//                                         baselines select serially)
//   5. interference scheduling  serial   (global view of the proposal set)
//   6. link-conflict resolution serial
//   7. loss mark                serial   (loss models may hold state)
//      apply                    sharded  (the boundary exchange — see below)
//   8. extraction               sharded
//
// Bitwise determinism across every (shard, thread) count rests on three
// invariants:
//
//   * every stochastic draw is addressed by (seed, step, phase, node)
//     (common/rng.hpp), so a draw's value cannot depend on which shard or
//     thread performs it;
//   * the global reductions (Σq, Σq², drift attribution, StepStats) use
//     exact integer accumulators folded in fixed shard order — integer
//     sums commute, so the fold equals the serial accumulation;
//   * each node's queue is mutated only by its owner shard, in ascending
//     transmission order — exactly the per-node mutation order of the
//     serial engine, which pins the value-dependent drift contributions
//     δ(2q+δ).
//
// The boundary exchange is implicit in the apply phase: the merged
// transmission list, keep flags, and loss verdicts are shared read-only
// state, and every shard scans the full list applying just the mutations
// of nodes it owns.  A cross-boundary delivery is therefore "exchanged"
// by the receiver's shard reading the sender's transmission — no queues,
// no message passing, no ordering ambiguity.  (A local-then-inbox scheme
// would reorder a node's receives after its sends and silently change the
// drift attribution relative to the serial engine.)
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/thread_pool.hpp"
#include "core/shard.hpp"
#include "core/simulator.hpp"

namespace lgg::core {

class ParallelStepEngine {
 public:
  /// Builds the plan for `sim`'s network.  `threads` == 0 picks
  /// min(shard_count, hardware concurrency).
  ParallelStepEngine(Simulator& sim, std::uint32_t shard_count,
                     std::size_t threads);

  [[nodiscard]] std::uint32_t shard_count() const {
    return plan_.shard_count;
  }
  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }
  [[nodiscard]] const ShardPlan& plan() const { return plan_; }

  /// Executes one step of `sim` (must be the simulator this engine was
  /// built for).  Called by Simulator::step while sharding is enabled.
  StepStats step(Simulator& sim);

  /// Re-derives the per-shard role lists after churn mutated node specs
  /// (node_leave/join, nudges through zero).  Ownership and node lists are
  /// untouched — churn never changes the node set — so the repaired plan
  /// visits exactly the nodes the serial engine does and sharded runs stay
  /// bitwise identical across every mutation.
  void refresh_roles(const SdNetwork& net) {
    repair_shard_plan_roles(plan_, net);
  }

 private:
  /// Per-shard working state; reset each step.  Accumulators are exact
  /// (wraparound-safe) mirrors of Simulator::apply_queue_delta's, folded
  /// into the simulator in shard order after the last parallel phase.
  struct ShardScratch {
    std::vector<Transmission> txs;  ///< selection output, grouped by node
    std::uint64_t active_nodes = 0;
    PacketCount sum_q_delta = 0;
    detail::QuadAccum sum_sq_delta = 0;
    StepStats stats;  ///< only the sharded-phase counters are used
    // Sparse per-(local node, cause) drift contributions, only maintained
    // while telemetry is armed.
    std::vector<std::uint64_t> drift;  // local node × kDriftCauseCount
    std::vector<char> drift_touched_flag;
    std::vector<std::uint32_t> drift_touched;  // local indices, visit order
    std::uint64_t busy_nanos = 0;  ///< this shard's work time (profiling)
  };

  /// The per-shard mutation funnel (mirror of apply_queue_delta).
  void shard_apply(Simulator& sim, ShardScratch& sh, bool drift_on, NodeId v,
                   PacketCount delta, obs::DriftCause cause) {
    auto& q = sim.queue_[static_cast<std::size_t>(v)];
    if (drift_on) {
      const auto uq = static_cast<std::uint64_t>(q);
      const auto ud = static_cast<std::uint64_t>(delta);
      const auto local =
          static_cast<std::size_t>(plan_.local_index[static_cast<std::size_t>(v)]);
      if (!sh.drift_touched_flag[local]) {
        sh.drift_touched_flag[local] = 1;
        sh.drift_touched.push_back(static_cast<std::uint32_t>(local));
      }
      sh.drift[local * obs::kDriftCauseCount +
               static_cast<std::size_t>(cause)] += ud * (2 * uq + ud);
    }
    sh.sum_sq_delta += detail::square(q + delta) - detail::square(q);
    sh.sum_q_delta += delta;
    q += delta;
  }

  /// Concatenates the per-shard selection outputs in ascending sender
  /// order — the serial engine's proposal order.
  void merge_transmissions(std::vector<Transmission>& out);

  /// Folds every shard's accumulators into the simulator, in shard order,
  /// and resets the scratch for the next step.
  void fold(Simulator& sim, StepStats& stats, bool drift_on);

  ShardPlan plan_;
  analysis::ThreadPool pool_;
  std::vector<ShardScratch> shards_;
  std::vector<std::size_t> merge_cursor_;
};

}  // namespace lgg::core
