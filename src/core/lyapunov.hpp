// The Lyapunov ledger of Section III, executed per step.
//
// The paper's proof machinery rests on a handful of exact identities and
// per-step inequalities around the potential P_t = Σ q²:
//
//   Eq. 1 (algebra):  P_{t+1} − P_t = Σ (Δq)² + 2 Σ q_t Δq
//   Eq. 3 (ledger):   δ_t := Σ q_t Δq decomposes into the injection term,
//                     the gradient sum over fired transmissions, the lost
//                     packets' terms, and the extraction term
//   LGG gradient:     every fired LGG transmission is strictly downhill
//                     with respect to the declared queues
//   Eq. 4 (telescope): summing q_t(v) − q_t(u) along the hops of a max-flow
//                     path decomposition telescopes to
//                     Σ_d q_t(d)·Φ(d,d*) − Σ_s q_t(s)·Φ(s*,s)
//
// LyapunovAuditor verifies all of them on the live simulation via the
// StepObserver hook, to the exact integer.  The audits power the Lyapunov
// bench and the proof-machinery tests.
#pragma once

#include <vector>

#include "core/flow_plan.hpp"
#include "core/simulator.hpp"

namespace lgg::core {

struct LyapunovStepAudit {
  TimeStep t = 0;
  double p_before = 0;      ///< P(x_t)
  double p_after = 0;       ///< P(x_{t+1})
  double delta = 0;         ///< δ_t = Σ x_t (x_{t+1} − x_t)
  double sum_dq_squared = 0;
  bool identity_ok = false;      ///< Eq. 1
  bool ledger_ok = false;        ///< Eq. 3 with losses/injections explicit
  bool gradient_ok = false;      ///< fired LGG txs strictly downhill
  double telescope_lhs = 0;      ///< Σ_{EΦ} (q(v) − q(u))
  double telescope_rhs = 0;      ///< Σ_d q(d)Φ(d,d*) − Σ_s q(s)Φ(s*,s)
  bool telescope_ok = false;     ///< Eq. 4
};

class LyapunovAuditor final : public StepObserver {
 public:
  /// Builds the fixed max-flow comparator plan Φ for the Eq. 4 telescope.
  explicit LyapunovAuditor(const SdNetwork& net);

  void on_step(const StepRecord& record) override;

  [[nodiscard]] const std::vector<LyapunovStepAudit>& audits() const {
    return audits_;
  }
  [[nodiscard]] bool all_ok() const;
  /// max_t δ_t — the quantity Properties 1/3 bound.
  [[nodiscard]] double max_delta() const;

 private:
  FlowPlan plan_;
  std::vector<LyapunovStepAudit> audits_;
};

}  // namespace lgg::core
