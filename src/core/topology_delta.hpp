// The per-step churn summary handed from the fault injector to everyone
// downstream (admission control, telemetry, shard-plan repair).
//
// Churn events (core/faults.hpp: edge_add/edge_remove/node_join/node_leave/
// nudge) mutate the live topology and rate declarations at the top of a
// step.  The injector records exactly what changed into a TopologyDelta so
// consumers can react in O(|delta|) instead of re-deriving the mutation by
// diffing full snapshots: the admission governor patches its warm-started
// feasibility certificate per entry, the simulator emits one flight event
// per entry, and the shard engine repairs its role lists once per non-empty
// delta.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/sd_network.hpp"

namespace lgg::core {

struct TopologyDelta {
  /// One edge whose churn-overlay activity flipped this step.  `active` is
  /// the new state (false for edge_remove, true for edge_add).
  struct EdgeChange {
    EdgeId edge = kInvalidEdge;
    bool active = true;
  };

  /// One node whose NodeSpec changed this step (capacity nudge, or the
  /// spec wipe/restore of a node_leave/node_join).
  struct RateChange {
    NodeId node = kInvalidNode;
    NodeSpec before;
    NodeSpec after;
  };

  std::vector<EdgeChange> edges;
  std::vector<RateChange> rates;
  std::vector<NodeId> joined;  ///< nodes re-entering via node_join
  std::vector<NodeId> left;    ///< nodes departing via node_leave

  [[nodiscard]] bool empty() const {
    return edges.empty() && rates.empty() && joined.empty() && left.empty();
  }

  void clear() {
    edges.clear();
    rates.clear();
    joined.clear();
    left.clear();
  }
};

}  // namespace lgg::core
