// LGG as a distributed max-flow solver.
//
// Section I relates LGG to Goldberg–Tarjan push-relabel [6]: queue lengths
// play the role of heights, and packets flow downhill.  The executable
// form of that remark: run LGG with saturating injection and no losses —
// the steady-state delivery rate converges to f*, i.e. the protocol
// *computes* the maximum flow of G* in a fully local way.  (The queue
// plateau is the "height function" certifying the min cut.)
#pragma once

#include <span>
#include <vector>

#include "core/sd_network.hpp"

namespace lgg::core {

struct ThroughputEstimate {
  double rate = 0.0;       ///< delivered packets per step over the window
  Cap fstar = 0;           ///< exact maximum flow, for comparison
  double relative_error = 0.0;  ///< |rate − f*| / max(f*, 1)
  TimeStep warmup = 0;
  TimeStep window = 0;
};

/// Runs LGG with every source injecting at full rate (clamped to in(v) =
/// its G* capacity) for `warmup + window` steps and measures the
/// extraction rate over the window.  `net` must have at least one source
/// and sink.  The sources' in(v) should be at least their G*-saturating
/// value for the estimate to reach f*; scenarios can use
/// `saturate_sources` below.
ThroughputEstimate estimate_max_flow_via_lgg(const SdNetwork& net,
                                             TimeStep warmup = 2000,
                                             TimeStep window = 4000,
                                             std::uint64_t seed = 1);

/// Returns a copy of `net` whose every source rate is raised to `rate`
/// (existing sinks untouched) — used to drive the network at or beyond
/// saturation so the measured throughput is cut-limited, not
/// arrival-limited.
SdNetwork saturate_sources(const SdNetwork& net, Cap rate);

/// The certifying cut hidden in LGG's queue landscape.
///
/// In push-relabel, the height function certifies the min cut; in LGG the
/// steady queue plateau plays the same role.  Thresholding the queues at
/// every level ℓ gives candidate source sides A(ℓ) = {v : q(v) >= ℓ}; the
/// cheapest of these level cuts (counting crossing links plus the out(d)
/// of sinks inside A) is the protocol's implicit min-cut certificate.
struct QueueCut {
  std::vector<char> side_a;  ///< source side of the best level cut
  Cap value = 0;             ///< its capacity (== f* at saturation)
  PacketCount level = 0;     ///< the queue threshold that produced it
};

/// Requires every source to sit in some A(ℓ) (true once saturated).
/// Returns the cheapest level cut.
QueueCut cut_from_queue_profile(const SdNetwork& net,
                                std::span<const PacketCount> queues);

}  // namespace lgg::core
