// Wireless-interference scheduling (Conjecture 5).
//
// The base model assumes all links fire simultaneously.  Under node-
// exclusive interference (the matching model of Wu–Srikant [2]) a node can
// take part in at most one transmission per step, so the fired set E_t must
// be a matching.  The conjecture posits that an *oracle* choosing an
// optimal E_t keeps LGG stable; we implement
//   * the identity scheduler (no interference),
//   * greedy maximal matching by gradient weight,
//   * exact maximum-weight matching (bitmask DP, n <= kExactMatchingMaxNodes)
//     — the checkable instantiation of the oracle,
//   * a distance-2 variant where transmissions conflict when their endpoint
//     sets touch or are adjacent.
#pragma once

#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "core/protocol.hpp"

namespace lgg::obs {
class Counter;
}  // namespace lgg::obs

namespace lgg::core {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Sets keep[i] = 0 for every transmission suppressed by interference.
  /// `keep` arrives all-1 with size txs.size().
  virtual void schedule(const StepView& view,
                        std::span<const Transmission> txs, Rng& rng,
                        std::vector<char>& keep) = 0;

  /// Checkpoint hooks (core/checkpoint.hpp).  All shipped schedulers are
  /// trajectory-stateless (OracleOrGreedy's counters are observability
  /// only), so the defaults suffice.
  virtual void save_state(std::ostream&) const {}
  virtual void load_state(std::istream&) {}

  /// Registers scheduler-specific metrics (obs/registry.hpp) when
  /// telemetry is attached.  Default: nothing to register.
  virtual void register_metrics(obs::MetricRegistry&) {}
};

/// All proposed transmissions fire (the paper's base model).
class NoInterference final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override { return "none"; }
  void schedule(const StepView&, std::span<const Transmission>, Rng&,
                std::vector<char>&) override {}
};

/// Gradient weight of a transmission: q(from) − q'(to), the potential drop
/// it realizes.  All schedulers below maximize (greedily or exactly) the
/// total weight of the fired matching.
PacketCount transmission_weight(const StepView& view, const Transmission& tx);

/// Greedy maximal matching: sort by weight descending, keep a transmission
/// iff both endpoints are still free.  2-approximation of the max-weight
/// matching.
class GreedyMatchingScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "greedy_matching";
  }
  void schedule(const StepView& view, std::span<const Transmission> txs,
                Rng& rng, std::vector<char>& keep) override;
};

inline constexpr NodeId kExactMatchingMaxNodes = 20;

/// Exact maximum-weight matching over the proposed transmissions via DP on
/// node subsets.  Only usable when the number of *distinct endpoints* is at
/// most kExactMatchingMaxNodes; throws otherwise.
class ExactMatchingScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "oracle_matching";
  }
  void schedule(const StepView& view, std::span<const Transmission> txs,
                Rng& rng, std::vector<char>& keep) override;
};

/// The practical oracle: exact max-weight matching when the step's
/// endpoint set is small enough, greedy matching otherwise.  This is how
/// the Conjecture-5 experiments scale past kExactMatchingMaxNodes.
class OracleOrGreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "oracle_or_greedy";
  }
  void schedule(const StepView& view, std::span<const Transmission> txs,
                Rng& rng, std::vector<char>& keep) override;

  /// Steps resolved exactly / greedily so far (observability for benches).
  [[nodiscard]] std::int64_t exact_steps() const { return exact_steps_; }
  [[nodiscard]] std::int64_t greedy_steps() const { return greedy_steps_; }

  /// Mirrors the two counters above into scheduler.exact_steps /
  /// scheduler.greedy_steps registry counters.
  void register_metrics(obs::MetricRegistry& registry) override;

 private:
  ExactMatchingScheduler exact_;
  GreedyMatchingScheduler greedy_;
  std::int64_t exact_steps_ = 0;
  std::int64_t greedy_steps_ = 0;
  obs::Counter* exact_counter_ = nullptr;
  obs::Counter* greedy_counter_ = nullptr;
};

/// Distance-2 conflict: two transmissions conflict when they share an
/// endpoint or any endpoint of one is adjacent to an endpoint of the other.
/// Greedy by weight.
class Distance2GreedyScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "greedy_distance2";
  }
  void schedule(const StepView& view, std::span<const Transmission> txs,
                Rng& rng, std::vector<char>& keep) override;
};

/// Checks the node-exclusive (matching) property of a kept set — used by
/// tests.  Returns true iff no node appears in two kept transmissions.
bool is_matching(std::span<const Transmission> txs,
                 std::span<const char> keep, NodeId node_count);

}  // namespace lgg::core
