// The routing-protocol interface shared by LGG and every baseline.
//
// A protocol sees the step-start snapshot (true queues for its own node,
// *declared* queues for neighbours — R-generalized nodes may lie, Def. 7)
// and proposes a set of single-packet transmissions.  The simulator then
// applies interference scheduling, link-conflict resolution, losses, and
// extraction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/sd_network.hpp"

namespace lgg::obs {
class MetricRegistry;
}  // namespace lgg::obs

namespace lgg::core {

/// One packet moved across one link in one step.
struct Transmission {
  EdgeId edge;
  NodeId from;
  NodeId to;

  friend bool operator==(const Transmission&, const Transmission&) = default;
};

/// Read-only view of the network at the moment transmissions are chosen
/// (after injection).
struct StepView {
  const SdNetwork* net = nullptr;
  const graph::CsrIncidence* incidence = nullptr;
  const graph::EdgeMask* active = nullptr;
  std::span<const PacketCount> queue;     ///< true queue lengths q_t
  std::span<const PacketCount> declared;  ///< declared queue lengths q'_t
  TimeStep t = 0;
  /// Incremented whenever the active edge set changes; protocols holding
  /// topology-derived caches (distances, flow paths) rekey on it.
  std::uint64_t topology_version = 0;
  /// Master seed for addressed draws (common/rng.hpp draw_key): a protocol
  /// that randomizes per node derives that node's stream from
  /// (draw_seed, t, phase, node) instead of consuming the shared stream,
  /// so its selections are identical under any sharding of the node set.
  std::uint64_t draw_seed = 0;
};

class RoutingProtocol {
 public:
  virtual ~RoutingProtocol() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Appends this step's proposed transmissions to `out` (left non-cleared
  /// so callers can compose).  Contract: per link at most one transmission
  /// per direction, only active links, and for every node u at most
  /// queue[u] transmissions leaving u.
  virtual void select_transmissions(const StepView& view, Rng& rng,
                                    std::vector<Transmission>& out) = 0;

  /// True when selection decomposes into independent per-node work whose
  /// randomness is addressed (StepView::draw_seed) rather than drawn from
  /// the shared stream.  The shard engine runs such protocols via
  /// select_for_nodes on one node range per shard; everything else is
  /// selected serially on the merged view.
  [[nodiscard]] virtual bool local_selection() const { return false; }

  /// Selection restricted to `nodes` (ascending node ids).  Appends the
  /// transmissions of exactly those senders to `out`, grouped per node in
  /// the order given, and returns the number of active nodes (nodes that
  /// held packets) — the work counter select_transmissions would have
  /// accumulated for them.  Must be thread-safe across disjoint node sets
  /// (no shared mutable scratch) and must not touch protocol metrics; the
  /// caller folds the returned counts via note_selection_work.  Only
  /// meaningful when local_selection() is true.
  virtual std::uint64_t select_for_nodes(const StepView&,
                                         std::span<const NodeId>,
                                         std::vector<Transmission>&) {
    return 0;
  }

  /// Folds a per-shard active-node count back into protocol metrics after
  /// a parallel selection (called once per step, deterministic total).
  virtual void note_selection_work(std::uint64_t) {}

  /// Drops protocol-internal caches (called when the simulator is reset).
  virtual void reset() {}

  /// Registers protocol-specific metrics (obs/registry.hpp) when telemetry
  /// is attached.  Handles must be null-guarded: a protocol runs without a
  /// registry by default.  Default: nothing to register.
  virtual void register_metrics(obs::MetricRegistry&) {}

  /// Serializes cross-step internal state that a checkpoint must capture
  /// (core/checkpoint.hpp).  Topology-derived caches that rebuild
  /// deterministically without touching the RNG need not be saved — only
  /// state whose loss would change the trajectory (e.g. StaleLgg's
  /// declaration history).  Default: stateless.
  virtual void save_state(std::ostream&) const {}
  /// Restores state written by save_state on an identically configured
  /// instance.  Called after reset().  Default: stateless.
  virtual void load_state(std::istream&) {}
};

/// Debug/test helper: verifies the protocol contract for a proposed set.
/// Returns an empty string when valid, else a description of the violation.
std::string check_transmission_contract(const StepView& view,
                                        std::span<const Transmission> txs);

}  // namespace lgg::core
