// Checkpoint generation chains: a ring of N retained snapshot generations
// plus a tiny CRC'd manifest, maintained so that *at every instant* there
// is a newest valid generation on disk — regardless of where the process
// dies.
//
// Layout, for a base path `run.ckpt`:
//
//   run.ckpt.gen000041        one v8 checkpoint per retained generation
//   run.ckpt.gen000042        (core/checkpoint.hpp wire format, unchanged)
//   run.ckpt.manifest         which generations exist, newest first
//
// Manifest text format (docs/formats.md):
//
//   lgg-ckpt-manifest v1
//   retain 3
//   generation 42 run.ckpt.gen000042 8400 3735928559 5124 20480
//   generation 41 run.ckpt.gen000041 8200 3134987712 5124 19968
//   crc 1A2B3C4D
//
// One `generation` line per retained generation, newest first, with the
// generation number, file name (relative to the manifest's directory),
// step index, CRC-32 of the whole generation file, file size in bytes,
// and the telemetry byte offset captured when the snapshot was taken (0
// when no telemetry stream is attached).  The final `crc` line is the
// hex CRC-32 of every preceding byte, so a torn manifest is detected as
// reliably as a torn snapshot.
//
// Append protocol (the crash-safety argument):
//   1. the new generation file is written durably (temp + fsync +
//      rename + dir fsync) — the manifest still names the old newest;
//   2. the manifest is rewritten durably, now naming the new generation;
//   3. only then are generations beyond the retain ring unlinked.
// A death between any two stages leaves either the old manifest naming
// an intact old generation, or the new manifest naming an intact new
// one.  Orphaned generation files (written but never manifested) are
// overwritten by the identical bytes when the recovered run re-reaches
// the same step — determinism keeps even the file ring bitwise
// reproducible across crashes.
//
// Recovery walks the manifest newest→oldest, discarding generations that
// fail CRC or deserialize checks (their files and entries are dropped),
// and restores the first valid one.  The generation counter rewinds with
// it, so the healed run re-issues the same generation numbers an
// uninterrupted run would have.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace lgg::core {

class Simulator;

struct GenerationEntry {
  std::uint64_t generation = 0;
  std::string file;  ///< relative to the manifest's directory
  TimeStep step = 0;
  std::uint32_t crc = 0;       ///< CRC-32 of the whole generation file
  std::uint64_t size = 0;      ///< generation file size in bytes
  std::uint64_t telemetry_offset = 0;
};

struct ChainManifest {
  int retain = 0;
  std::vector<GenerationEntry> entries;  ///< newest first
};

class CheckpointChain {
 public:
  /// Binds to `base_path` with a ring of `retain` generations (>= 1).  An
  /// existing valid manifest is adopted (generation numbering continues);
  /// a missing or corrupt one starts the chain empty.
  CheckpointChain(std::string base_path, int retain);

  /// Appends the simulator's state as the next generation and publishes
  /// it in the manifest (manifest last — see the append protocol above),
  /// then prunes generations beyond the ring.  Throws CheckpointError
  /// when the generation or manifest write fails; the manifest then still
  /// names the previous valid newest generation.
  void append(const Simulator& sim, std::uint64_t telemetry_offset);

  struct Recovery {
    std::uint64_t generation = 0;
    TimeStep step = 0;
    std::uint64_t telemetry_offset = 0;
    int rollback_depth = 0;  ///< generations discarded before this one
  };

  /// Re-reads the manifest from disk and walks it newest→oldest,
  /// restoring `sim` from the first generation that passes CRC and
  /// deserialize checks.  Discarded generations are dropped from the
  /// chain (entries and files).  After a successful restore,
  /// `telemetry_rewind` (when set) is called with the restored
  /// generation's telemetry byte offset so the caller can truncate its
  /// JSONL stream to match.  Returns nullopt when no manifest exists or
  /// no generation is valid; the simulator is only mutated on success
  /// (up to a component-level load failure, which the next-older attempt
  /// re-applies over).
  std::optional<Recovery> recover(
      Simulator& sim,
      const std::function<void(std::uint64_t)>& telemetry_rewind = {});

  [[nodiscard]] const std::string& base_path() const { return base_; }
  [[nodiscard]] std::string manifest_path() const {
    return base_ + ".manifest";
  }
  /// Path of a generation file for this chain's base.
  [[nodiscard]] std::string generation_path(std::uint64_t generation) const;
  /// Newest manifested generation number; 0 when the chain is empty.
  [[nodiscard]] std::uint64_t latest() const;
  [[nodiscard]] const ChainManifest& manifest() const { return manifest_; }

  /// Parses a manifest file, validating magic and trailing CRC.  Returns
  /// nullopt when the file is missing, torn, or malformed.
  static std::optional<ChainManifest> read_manifest(const std::string& path);

 private:
  void write_manifest();

  std::string base_;
  int retain_;
  ChainManifest manifest_;
};

}  // namespace lgg::core
