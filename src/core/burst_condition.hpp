// Conjecture 2's arrival-trace condition, made decidable.
//
// The conjecture says: arrivals exceeding the maximum flow over some
// interval are harmless iff a later interval compensates.  The quantity
// that captures this is the maximal interval excess
//
//   B(a) = max over intervals [s, e) of ( Σ_{t in [s,e)} a_t − (e−s)·f* )
//
// which is exactly the extra backlog any scheduler is forced to carry
// (Lindley recursion / Kadane form).  The trace is "compensated" iff B is
// bounded; for a periodic pattern this reduces to checking one period plus
// the per-period drift.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace lgg::core {

/// Maximal interval excess of the per-step arrival totals against service
/// rate `fstar` (0 when every window is within capacity).
PacketCount max_interval_excess(std::span<const PacketCount> arrivals,
                                Cap fstar);

/// The running forced backlog: r_0 = 0, r_{t+1} = max(0, r_t + a_t − f*).
/// Its maximum equals max_interval_excess; its final value is the backlog
/// carried out of the trace.
std::vector<PacketCount> forced_backlog(std::span<const PacketCount> arrivals,
                                        Cap fstar);

struct BurstVerdict {
  PacketCount max_excess = 0;       ///< B over the inspected horizon
  PacketCount residual_backlog = 0; ///< backlog left at the end
  Cap per_period_drift = 0;         ///< Σ a − period·f* (periodic traces)
  /// Conjecture 2's hypothesis holds: every overload is later compensated
  /// (drift <= 0), so the forced backlog is bounded by max_excess.
  bool compensated = false;
};

/// Analyzes one period of a periodic arrival pattern.
BurstVerdict analyze_periodic_trace(std::span<const PacketCount> one_period,
                                    Cap fstar);

}  // namespace lgg::core
