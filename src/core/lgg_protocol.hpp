// Algorithm 1 of the paper: the Local Greedy Gradient protocol.
//
// At each step, every node u orders its (active) incident links by
// increasing declared queue length of the far endpoint, then sends one
// packet over each link whose far endpoint is strictly lower than u's own
// (true) queue, stopping once q_t(u) packets have been committed — i.e. u
// serves its q_t(u) lowest neighbours first.  The paper notes the tie-break
// among equal neighbours does not affect stability; both deterministic and
// randomized tie-breaks are provided so experiments can confirm it.
#pragma once

#include "core/protocol.hpp"

namespace lgg::obs {
class Counter;
}  // namespace lgg::obs

namespace lgg::core {

enum class TieBreak {
  kById,           ///< (declared queue, neighbour id, edge id) ascending
  kRandomShuffle,  ///< random order, then stable sort by declared queue
};

class LggProtocol final : public RoutingProtocol {
 public:
  explicit LggProtocol(TieBreak tie_break = TieBreak::kById)
      : tie_break_(tie_break) {}

  [[nodiscard]] std::string_view name() const override { return "lgg"; }

  void select_transmissions(const StepView& view, Rng& rng,
                            std::vector<Transmission>& out) override;

  /// Registers protocol.active_nodes — cumulative count of nodes that held
  /// packets when transmissions were chosen (the per-step work LGG scans).
  void register_metrics(obs::MetricRegistry& registry) override;

 private:
  TieBreak tie_break_;
  // Scratch reused across steps to avoid per-step allocation.
  std::vector<graph::IncidentLink> scratch_;
  obs::Counter* active_nodes_ = nullptr;
};

}  // namespace lgg::core
