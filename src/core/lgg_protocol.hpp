// Algorithm 1 of the paper: the Local Greedy Gradient protocol.
//
// At each step, every node u orders its (active) incident links by
// increasing declared queue length of the far endpoint, then sends one
// packet over each link whose far endpoint is strictly lower than u's own
// (true) queue, stopping once q_t(u) packets have been committed — i.e. u
// serves its q_t(u) lowest neighbours first.  The paper notes the tie-break
// among equal neighbours does not affect stability; both deterministic and
// randomized tie-breaks are provided so experiments can confirm it.
//
// Selection is local by construction (each node needs only its own queue
// and its neighbours' declarations), and the randomized tie-break draws
// from the node's addressed stream (StepView::draw_seed), so the shard
// engine can select disjoint node ranges concurrently and reproduce the
// serial trajectory bit for bit.
#pragma once

#include "core/protocol.hpp"

namespace lgg::obs {
class Counter;
}  // namespace lgg::obs

namespace lgg::core {

enum class TieBreak {
  kById,           ///< (declared queue, neighbour id, edge id) ascending
  kRandomShuffle,  ///< random order, then stable sort by declared queue
};

class LggProtocol final : public RoutingProtocol {
 public:
  explicit LggProtocol(TieBreak tie_break = TieBreak::kById)
      : tie_break_(tie_break) {}

  [[nodiscard]] std::string_view name() const override { return "lgg"; }

  void select_transmissions(const StepView& view, Rng& rng,
                            std::vector<Transmission>& out) override;

  [[nodiscard]] bool local_selection() const override { return true; }
  std::uint64_t select_for_nodes(const StepView& view,
                                 std::span<const NodeId> nodes,
                                 std::vector<Transmission>& out) override;
  void note_selection_work(std::uint64_t active) override;

  /// Registers protocol.active_nodes — cumulative count of nodes that held
  /// packets when transmissions were chosen (the per-step work LGG scans).
  void register_metrics(obs::MetricRegistry& registry) override;

 private:
  /// One node's selection into `out` using caller-provided scratch.
  /// Returns 1 when the node was active (held packets), 0 otherwise.
  std::uint64_t select_node(const StepView& view, NodeId u,
                            std::vector<graph::IncidentLink>& scratch,
                            std::vector<Transmission>& out) const;

  TieBreak tie_break_;
  // Scratch reused across steps by the serial path; the shard path uses a
  // call-local vector instead so concurrent shards never share it.
  std::vector<graph::IncidentLink> scratch_;
  obs::Counter* active_nodes_ = nullptr;
};

}  // namespace lgg::core
