#include "core/throughput.hpp"

#include <algorithm>
#include <cmath>

#include "core/simulator.hpp"

namespace lgg::core {

SdNetwork saturate_sources(const SdNetwork& net, Cap rate) {
  LGG_REQUIRE(rate >= 1, "saturate_sources: rate >= 1");
  SdNetwork out(net.topology());
  for (NodeId v = 0; v < net.node_count(); ++v) {
    const NodeSpec& spec = net.spec(v);
    if (spec.in > 0) {
      out.set_generalized(v, std::max(spec.in, rate), spec.out,
                          spec.retention);
    } else if (spec.out > 0 || spec.retention > 0) {
      out.set_generalized(v, spec.in, spec.out, spec.retention);
    }
  }
  return out;
}

QueueCut cut_from_queue_profile(const SdNetwork& net,
                                std::span<const PacketCount> queues) {
  LGG_REQUIRE(static_cast<NodeId>(queues.size()) == net.node_count(),
              "cut_from_queue_profile: queue size mismatch");
  const graph::Multigraph& g = net.topology();
  // Candidate thresholds: every distinct positive queue level.
  std::vector<PacketCount> levels(queues.begin(), queues.end());
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

  QueueCut best;
  bool found = false;
  for (const PacketCount level : levels) {
    if (level <= 0) continue;
    std::vector<char> side(queues.size(), 0);
    bool sources_inside = true;
    for (NodeId v = 0; v < net.node_count(); ++v) {
      side[static_cast<std::size_t>(v)] =
          queues[static_cast<std::size_t>(v)] >= level ? 1 : 0;
    }
    for (const NodeId s : net.sources()) {
      sources_inside =
          sources_inside && side[static_cast<std::size_t>(s)] != 0;
    }
    if (!sources_inside) continue;
    Cap value = 0;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const graph::Endpoints ep = g.endpoints(e);
      if (side[static_cast<std::size_t>(ep.u)] !=
          side[static_cast<std::size_t>(ep.v)]) {
        ++value;  // an undirected unit link crossing the level set
      }
    }
    for (const NodeId d : net.sinks()) {
      if (side[static_cast<std::size_t>(d)]) value += net.spec(d).out;
    }
    if (!found || value < best.value) {
      best.side_a = std::move(side);
      best.value = value;
      best.level = level;
      found = true;
    }
  }
  LGG_REQUIRE(found,
              "cut_from_queue_profile: no level set contains every source "
              "(run the network to saturation first)");
  return best;
}

ThroughputEstimate estimate_max_flow_via_lgg(const SdNetwork& net,
                                             TimeStep warmup,
                                             TimeStep window,
                                             std::uint64_t seed) {
  LGG_REQUIRE(warmup >= 0 && window >= 1,
              "estimate_max_flow_via_lgg: bad horizon");
  net.validate();
  ThroughputEstimate estimate;
  estimate.warmup = warmup;
  estimate.window = window;
  estimate.fstar = analyze(net).fstar;

  SimulatorOptions options;
  options.seed = seed;
  Simulator sim(net, options);
  sim.run(warmup);
  const PacketCount before = sim.cumulative().extracted;
  sim.run(window);
  const PacketCount delivered = sim.cumulative().extracted - before;
  estimate.rate = static_cast<double>(delivered) /
                  static_cast<double>(window);
  estimate.relative_error =
      std::abs(estimate.rate - static_cast<double>(estimate.fstar)) /
      std::max<double>(static_cast<double>(estimate.fstar), 1.0);
  return estimate;
}

}  // namespace lgg::core
