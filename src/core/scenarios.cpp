#include "core/scenarios.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/generators.hpp"

namespace lgg::core::scenarios {

SdNetwork single_path(NodeId len, Cap in, Cap out) {
  LGG_REQUIRE(len >= 2, "single_path: len >= 2");
  SdNetwork net(graph::make_path(len));
  net.set_source(0, in);
  net.set_sink(len - 1, out);
  return net;
}

SdNetwork fat_path(NodeId len, int multiplicity, Cap in, Cap out) {
  LGG_REQUIRE(len >= 2, "fat_path: len >= 2");
  SdNetwork net(graph::make_fat_path(len, multiplicity));
  net.set_source(0, in);
  net.set_sink(len - 1, out);
  return net;
}

SdNetwork grid_flow(NodeId rows, NodeId cols, Cap in, Cap out) {
  LGG_REQUIRE(rows >= 1 && cols >= 2, "grid_flow: rows >= 1, cols >= 2");
  SdNetwork net(graph::make_grid(rows, cols));
  for (NodeId r = 0; r < rows; ++r) {
    net.set_source(r * cols, in);
    net.set_sink(r * cols + cols - 1, out);
  }
  return net;
}

SdNetwork grid_single(NodeId rows, NodeId cols, Cap in, Cap out) {
  LGG_REQUIRE(rows >= 2 && cols >= 2, "grid_single: rows, cols >= 2");
  SdNetwork net(graph::make_grid(rows, cols));
  net.set_source((rows / 2) * cols, in);
  for (NodeId r = 0; r < rows; ++r) {
    net.set_sink(r * cols + cols - 1, out);
  }
  return net;
}

SdNetwork bipartite(NodeId a, NodeId b, Cap in, Cap out) {
  SdNetwork net(graph::make_complete_bipartite(a, b));
  for (NodeId v = 0; v < a; ++v) net.set_source(v, in);
  for (NodeId v = 0; v < b; ++v) net.set_sink(a + v, out);
  return net;
}

SdNetwork barbell_bottleneck(NodeId k, Cap total_in, Cap out) {
  LGG_REQUIRE(k >= 2, "barbell_bottleneck: k >= 2");
  LGG_REQUIRE(total_in >= 1, "barbell_bottleneck: total_in >= 1");
  SdNetwork net(graph::make_barbell(k));
  net.set_source(0, total_in);
  net.set_sink(2 * k - 1, out);
  return net;
}

SdNetwork random_unsaturated(NodeId n, EdgeId m, int nsrc, int nsink,
                             std::uint64_t seed, Cap out) {
  LGG_REQUIRE(n >= 2, "random_unsaturated: n >= 2");
  LGG_REQUIRE(nsrc >= 1 && nsink >= 1 && nsrc + nsink <= n,
              "random_unsaturated: bad source/sink counts");
  for (int attempt = 0; attempt < 200; ++attempt) {
    const std::uint64_t s = derive_seed(seed, static_cast<std::uint64_t>(attempt));
    graph::Multigraph g = graph::make_random_multigraph(n, m, s);
    if (!graph::is_connected(g)) continue;
    SdNetwork net(std::move(g));
    // Sources at the front, sinks at the back of the id space.
    for (int i = 0; i < nsrc; ++i) net.set_source(static_cast<NodeId>(i), 1);
    for (int i = 0; i < nsink; ++i) {
      net.set_sink(n - 1 - static_cast<NodeId>(i), out);
    }
    const flow::FeasibilityReport report = analyze(net);
    if (report.feasible && report.unsaturated) return net;
  }
  throw std::runtime_error(
      "random_unsaturated: no feasible unsaturated instance found; "
      "increase m or reduce nsrc");
}

SdNetwork saturated_at_dstar(NodeId a) {
  LGG_REQUIRE(a >= 1, "saturated_at_dstar: a >= 1");
  return bipartite(a, a, /*in=*/1, /*out=*/1);
}

SdNetwork clique_chain(NodeId k, int count, Cap out) {
  LGG_REQUIRE(k >= 2, "clique_chain: k >= 2");
  LGG_REQUIRE(count >= 2, "clique_chain: count >= 2");
  graph::Multigraph g(k * static_cast<NodeId>(count));
  for (int c = 0; c < count; ++c) {
    const NodeId base = k * static_cast<NodeId>(c);
    for (NodeId u = 0; u < k; ++u) {
      for (NodeId v = u + 1; v < k; ++v) {
        g.add_edge(base + u, base + v);
      }
    }
    if (c + 1 < count) {
      // Bridge from this clique's last node to the next clique's first.
      g.add_edge(base + k - 1, base + k);
    }
  }
  SdNetwork net(std::move(g));
  net.set_source(0, 1);
  net.set_sink(k * static_cast<NodeId>(count) - 1, out);
  return net;
}

SdNetwork scale_arrivals(const SdNetwork& net, double factor) {
  LGG_REQUIRE(factor > 0.0, "scale_arrivals: factor > 0");
  SdNetwork scaled(net.topology());
  for (NodeId v = 0; v < net.node_count(); ++v) {
    const NodeSpec& spec = net.spec(v);
    if (spec.in == 0 && spec.out == 0 && spec.retention == 0) continue;
    const auto scaled_in = static_cast<Cap>(
        std::ceil(static_cast<double>(spec.in) * factor));
    if (scaled_in > 0 || spec.out > 0 || spec.retention > 0) {
      scaled.set_generalized(v, scaled_in, spec.out, spec.retention);
    }
  }
  return scaled;
}

SdNetwork generalize(const SdNetwork& net, Cap retention) {
  LGG_REQUIRE(retention >= 0, "generalize: retention >= 0");
  SdNetwork gen(net.topology());
  for (NodeId v = 0; v < net.node_count(); ++v) {
    const NodeSpec& spec = net.spec(v);
    if (spec.in == 0 && spec.out == 0 && spec.retention == 0) continue;
    gen.set_generalized(v, spec.in, spec.out, retention);
  }
  return gen;
}

}  // namespace lgg::core::scenarios
