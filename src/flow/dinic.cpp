#include "flow/dinic.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace lgg::flow {

namespace {

class DinicSolver {
 public:
  DinicSolver(FlowNetwork& net, NodeId source, NodeId sink)
      : net_(net),
        source_(source),
        sink_(sink),
        level_(static_cast<std::size_t>(net.node_count())),
        iter_(static_cast<std::size_t>(net.node_count())) {}

  Cap run() {
    Cap total = 0;
    while (build_levels()) {
      std::fill(iter_.begin(), iter_.end(), 0);
      while (const Cap pushed = augment(source_, kInf)) total += pushed;
    }
    return total;
  }

 private:
  static constexpr Cap kInf = std::numeric_limits<Cap>::max();

  bool build_levels() {
    std::fill(level_.begin(), level_.end(), -1);
    std::queue<NodeId> bfs;
    level_[static_cast<std::size_t>(source_)] = 0;
    bfs.push(source_);
    while (!bfs.empty()) {
      const NodeId u = bfs.front();
      bfs.pop();
      for (const ArcId a : net_.out_arcs(u)) {
        const NodeId v = net_.to(a);
        if (net_.residual(a) > 0 && level_[static_cast<std::size_t>(v)] < 0) {
          level_[static_cast<std::size_t>(v)] =
              level_[static_cast<std::size_t>(u)] + 1;
          bfs.push(v);
        }
      }
    }
    return level_[static_cast<std::size_t>(sink_)] >= 0;
  }

  Cap augment(NodeId u, Cap limit) {
    if (u == sink_) return limit;
    const auto arcs = net_.out_arcs(u);
    for (auto& i = iter_[static_cast<std::size_t>(u)];
         i < static_cast<int>(arcs.size()); ++i) {
      const ArcId a = arcs[static_cast<std::size_t>(i)];
      const NodeId v = net_.to(a);
      if (net_.residual(a) <= 0 ||
          level_[static_cast<std::size_t>(v)] !=
              level_[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const Cap pushed =
          augment(v, std::min(limit, net_.residual(a)));
      if (pushed > 0) {
        net_.push(a, pushed);
        return pushed;
      }
    }
    return 0;
  }

  FlowNetwork& net_;
  NodeId source_;
  NodeId sink_;
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace

Cap dinic_max_flow(FlowNetwork& net, NodeId source, NodeId sink) {
  LGG_REQUIRE(net.valid_node(source) && net.valid_node(sink),
              "dinic: bad terminal");
  LGG_REQUIRE(source != sink, "dinic: source == sink");
  return DinicSolver(net, source, sink).run();
}

}  // namespace lgg::flow
