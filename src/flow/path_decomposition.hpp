// Decomposition of an integral s-t flow into flow-carrying paths.
//
// Flow cycles (which push-relabel may leave behind) are cancelled first, so
// the remaining flow decomposes into at most |E| simple s-t paths whose
// amounts sum to the flow value.  On the paper's extended graph G* all
// internal arcs have capacity 1, so the decomposition yields unit paths —
// exactly the E_t^Φ comparison set used in the proofs of Properties 1–2,
// and the route plan of the max-flow baseline router.
#pragma once

#include <vector>

#include "flow/flow_network.hpp"

namespace lgg::flow {

struct FlowPath {
  std::vector<NodeId> nodes;  // s = nodes.front(), t = nodes.back()
  std::vector<ArcId> arcs;    // arcs[i] connects nodes[i] -> nodes[i+1]
  Cap amount = 0;
};

/// Removes flow cycles from `net` in place (flow value is unchanged).
void cancel_flow_cycles(FlowNetwork& net);

/// Decomposes the flow in `net` into paths.  `net` is modified: on return
/// it carries zero flow.  The amounts sum to the original flow value.
std::vector<FlowPath> decompose_into_paths(FlowNetwork& net, NodeId source,
                                           NodeId sink);

}  // namespace lgg::flow
