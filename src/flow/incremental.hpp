// Warm-started incremental max-flow over the paper's extended graph G*.
//
// The static pipeline (feasibility.cpp) rebuilds G* and re-solves from
// scratch for every query; under topology churn that makes the feasibility
// certificate O(V·E²) per mutation.  This engine instead keeps one live
// FlowNetwork and *patches* the maximum flow across single mutations:
//
//   * edge activate / capacity raise: keep the old flow (still valid, still
//     capacity-respecting) and augment residual s*→d* paths to completion;
//   * edge deactivate / capacity cut: reduce the flow on the affected arc
//     down to the new capacity — first by rerouting the surplus through the
//     residual graph (which also cancels flow cycles through the arc), then
//     by draining the remainder back to the terminals — and re-augment.
//
// Correctness leans on Ford–Fulkerson, not on the patch path: every
// mutation ends with a *valid* flow and augment-to-completion, and a valid
// flow without an augmenting path is maximum.  The warm start only buys
// speed; the value is exact after every mutation.  A from-scratch
// Edmonds–Karp cross-check runs after each mutation in debug builds (and on
// demand via set_cross_check).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flow/feasibility.hpp"
#include "flow/flow_network.hpp"
#include "graph/multigraph.hpp"

namespace lgg::flow {

/// Patch-vs-rebuild accounting, surfaced as telemetry gauges.
struct IncrementalStats {
  std::uint64_t patches = 0;        ///< single-mutation warm patches applied
  std::uint64_t rebuilds = 0;       ///< full from-scratch (re)solves
  std::uint64_t augment_paths = 0;  ///< augmenting/reroute/drain paths pushed
  std::uint64_t bfs_arcs = 0;       ///< residual arcs scanned (work proxy)
};

class IncrementalMaxFlow {
 public:
  /// Builds G* for `g` with the given rated nodes and solves it once.
  /// `mask`, when provided, deactivates the masked-off edges up front
  /// (their arcs exist at capacity 0, ready for later activation).
  IncrementalMaxFlow(const graph::Multigraph& g,
                     std::span<const RatedNode> sources,
                     std::span<const RatedNode> sinks,
                     ExtendedGraphOptions options = {},
                     const graph::EdgeMask* mask = nullptr);

  // -- mutations: each leaves the stored flow maximum ----------------------

  /// Activates or deactivates one edge of G (both direction arcs).
  void set_edge_active(EdgeId e, bool active);

  /// Replaces the in(s) rate of `v` (0 detaches the source).  Nodes that
  /// were not rated at construction get a fresh (s*, v) arc on demand.
  void set_source_rate(NodeId v, Cap rate);

  /// Replaces the out(d) rate of `v`; same lazy-arc behavior.
  void set_sink_rate(NodeId v, Cap rate);

  // -- queries -------------------------------------------------------------

  /// Current max-flow value (f* when options.unbounded_sources).
  [[nodiscard]] Cap value() const { return value_; }

  /// Σ in(s) over currently rated sources (unscaled).
  [[nodiscard]] Cap arrival_rate() const { return rate_total_; }

  /// True iff the flow saturates every (s*, s) arc — Definition 3
  /// feasibility at the engine's source_scale.  Meaningless (always false
  /// for non-empty sources) under unbounded_sources.
  [[nodiscard]] bool saturates_sources() const {
    return value_ == source_cap_total_;
  }

  [[nodiscard]] bool edge_active(EdgeId e) const;
  [[nodiscard]] Cap source_rate(NodeId v) const;
  [[nodiscard]] Cap sink_rate(NodeId v) const;
  [[nodiscard]] const IncrementalStats& stats() const { return stats_; }

  /// Arms/disarms the per-mutation from-scratch differential check.
  /// Defaults to on in assert-enabled builds, off under NDEBUG.
  void set_cross_check(bool on) { cross_check_ = on; }

 private:
  void apply_capacity(ArcId a, Cap cap);
  void lower_arc_flow(ArcId a, Cap target);
  void augment();
  void verify_against_scratch() const;
  [[nodiscard]] Cap source_cap_for(Cap rate) const;

  /// BFS for a residual path `from` ⇝ `to`, skipping the arc pair of
  /// `banned` (and its twin).  Fills parent_arc_; returns the bottleneck
  /// residual, or 0 when no path exists.
  Cap find_path(NodeId from, NodeId to, ArcId banned);
  /// Pushes `amount` along the parent_arc_ chain from `from` to `to`.
  void push_path(NodeId from, NodeId to, Cap amount);

  const graph::Multigraph* g_ = nullptr;
  ExtendedGraphOptions options_;
  Cap unbounded_cap_ = 0;

  FlowNetwork net_;
  NodeId s_star_ = kInvalidNode;
  NodeId d_star_ = kInvalidNode;
  std::vector<ArcId> forward_edge_arcs_;   // per edge of G
  std::vector<ArcId> backward_edge_arcs_;  // per edge of G
  std::vector<ArcId> source_arc_;  // per node; kInvalidArc until first rated
  std::vector<ArcId> sink_arc_;
  std::vector<Cap> source_rate_;   // unscaled in(s), 0 = not a source
  std::vector<Cap> sink_rate_;
  std::vector<char> edge_active_;

  Cap value_ = 0;
  Cap rate_total_ = 0;        // Σ unscaled source rates
  Cap source_cap_total_ = 0;  // Σ live (s*, s) arc capacities
  Cap sink_cap_total_ = 0;    // Σ live (d, d*) arc capacities

  // Epoch-stamped BFS scratch, reused across mutations.
  std::vector<std::uint32_t> seen_;
  std::vector<ArcId> parent_arc_;
  std::vector<NodeId> queue_;
  std::vector<ArcId> path_scratch_;
  std::uint32_t epoch_ = 0;

  IncrementalStats stats_;
  bool cross_check_ = false;
};

inline constexpr flow::ArcId kInvalidArc = -1;

}  // namespace lgg::flow
