// Minimum-cut extraction from a solved flow network.
//
// After a maximum flow, the family of minimum cuts forms a lattice; its
// extreme elements are recovered from residual reachability:
//   * smallest source side  A_min = { v reachable from s in the residual }
//   * largest source side   A_max = V \ { v that can reach t in the residual }
// Section V of the paper branches on where minimum cuts sit (only at s*,
// also at d*, or strictly inside G) — cut_location() computes exactly that
// classification.
#pragma once

#include <vector>

#include "flow/flow_network.hpp"

namespace lgg::flow {

struct CutSides {
  /// min_side[v] != 0 iff v is on the source side of the smallest min cut.
  std::vector<char> min_side;
  /// max_side[v] != 0 iff v is on the source side of the largest min cut.
  std::vector<char> max_side;
};

/// Requires `net` to hold a maximum s-t flow.
CutSides min_cut_sides(const FlowNetwork& net, NodeId source, NodeId sink);

/// Capacity of the cut defined by the indicator `side_a` (arcs from A to B).
Cap cut_capacity(const FlowNetwork& net, const std::vector<char>& side_a);

/// Where minimum cuts sit relative to the terminals (Section V cases).
struct CutLocation {
  /// The smallest min cut is ({source}, rest) — paper case 1 when unique.
  bool at_source = false;
  /// The largest min cut is (rest, {sink}) — paper case 2.
  bool at_sink = false;
  /// Some minimum cut has non-terminal nodes on both sides — paper case 3.
  bool internal = false;
  /// at_source && the cut at the source is the *unique* min cut.
  bool unique_at_source = false;
};

CutLocation cut_location(const FlowNetwork& net, NodeId source, NodeId sink);

}  // namespace lgg::flow
