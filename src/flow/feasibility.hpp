// The paper's extended graph G* (Section II, Fig. 2 and Fig. 4) and the
// feasibility / saturation analysis built on it:
//
//   * G* adds a virtual source s* with arcs (s*, s) of capacity in(s) and a
//     virtual sink d* with arcs (d, d*) of capacity out(d); every undirected
//     link of G becomes a pair of opposite unit-capacity arcs.
//   * feasible        ⇔ a max s*-d* flow saturates every (s*, s) arc (Def. 3)
//   * unsaturated     ⇔ still feasible with source capacities (1+ε)·in(s)
//                        for some ε > 0 (Def. 4)
//   * f*              =  max flow value with unbounded source arcs
//
// R-generalized networks (Defs 7–8) are covered by the same machinery: a
// node may appear in both the sources and the sinks list (it gets both an
// (s*, v) and a (v, d*) arc, as in Fig. 4).
//
// ε is recovered by integer parametric scaling: all capacities are
// multiplied by kEpsilonDenom and the source rates by a trial numerator; a
// binary search finds the largest feasible numerator.  The reported ε is a
// lower bound on the true margin (within 1/kEpsilonDenom), which keeps every
// theoretical bound computed from it conservative.
#pragma once

#include <span>
#include <vector>

#include "flow/flow_network.hpp"
#include "flow/min_cut.hpp"
#include "graph/multigraph.hpp"

namespace lgg::flow {

/// A source (rate = in(s) > 0) or destination (rate = out(d) > 0) node.
struct RatedNode {
  NodeId node;
  Cap rate;

  friend bool operator==(const RatedNode&, const RatedNode&) = default;
};

/// Denominator of the parametric ε search (ε resolution = 1/1024).
inline constexpr Cap kEpsilonDenom = 1024;

struct ExtendedGraphOptions {
  /// Capacity assigned to each direction of every undirected link of G.
  Cap edge_capacity = 1;
  /// Multiplier applied to every out(d) sink rate.
  Cap sink_scale = 1;
  /// Multiplier applied to every in(s) source rate.
  Cap source_scale = 1;
  /// When true, the (s*, s) arcs get effectively unbounded capacity
  /// (used to compute f*).
  bool unbounded_sources = false;
};

/// G* plus handles into its arc structure.
struct ExtendedGraph {
  FlowNetwork net;
  NodeId s_star = kInvalidNode;
  NodeId d_star = kInvalidNode;
  std::vector<ArcId> source_arcs;        // parallel to the sources span
  std::vector<ArcId> sink_arcs;          // parallel to the sinks span
  std::vector<ArcId> forward_edge_arcs;  // per edge e of G: arc u(e) -> v(e)
  std::vector<ArcId> backward_edge_arcs; // per edge e of G: arc v(e) -> u(e)
};

ExtendedGraph build_extended_graph(const graph::Multigraph& g,
                                   std::span<const RatedNode> sources,
                                   std::span<const RatedNode> sinks,
                                   const ExtendedGraphOptions& options = {});

/// Outcome of the full Section-II / Section-V analysis of an instance.
struct FeasibilityReport {
  Cap arrival_rate = 0;      // Σ in(s)
  Cap fstar = 0;             // max flow with unbounded source arcs
  Cap max_flow_at_rates = 0; // max flow with capacities in(s)
  bool feasible = false;     // Definition 3
  bool unsaturated = false;  // Definition 4 (ε > 0)
  double epsilon = 0.0;      // largest verified margin, ±1/kEpsilonDenom
  CutLocation location;      // min-cut placement after the exact solve
};

FeasibilityReport analyze_feasibility(const graph::Multigraph& g,
                                      std::span<const RatedNode> sources,
                                      std::span<const RatedNode> sinks);

/// Largest λ (as a fraction a/kEpsilonDenom rounded down) such that the
/// network is feasible with source rates λ·in(s).  Returns 0 if the network
/// is infeasible even at λ = 0+ (no sources), and at least 1 for a feasible
/// network.
double max_arrival_scaling(const graph::Multigraph& g,
                           std::span<const RatedNode> sources,
                           std::span<const RatedNode> sinks);

}  // namespace lgg::flow
