#include "flow/incremental.hpp"

#include <algorithm>

#include "flow/edmonds_karp.hpp"
#include "flow/max_flow.hpp"

namespace lgg::flow {

namespace {

// Unbounded (s*, s) arcs must dominate every finite cut forever, including
// cuts that only exist after future rate nudges; a fixed ceiling with a
// guarded headroom invariant (sink caps stay below half of it) keeps that
// true without rebuilding arcs when rates grow.
constexpr Cap kUnboundedCap = Cap{1} << 40;

}  // namespace

IncrementalMaxFlow::IncrementalMaxFlow(const graph::Multigraph& g,
                                       std::span<const RatedNode> sources,
                                       std::span<const RatedNode> sinks,
                                       ExtendedGraphOptions options,
                                       const graph::EdgeMask* mask)
    : g_(&g), options_(options), unbounded_cap_(kUnboundedCap) {
  LGG_REQUIRE(options_.edge_capacity >= 1, "IncrementalMaxFlow: edge cap");
  LGG_REQUIRE(options_.sink_scale >= 1, "IncrementalMaxFlow: sink scale");
  LGG_REQUIRE(options_.source_scale >= 1 || options_.unbounded_sources,
              "IncrementalMaxFlow: source scale");
  LGG_REQUIRE(mask == nullptr || mask->size() == g.edge_count(),
              "IncrementalMaxFlow: mask size mismatch");
#ifndef NDEBUG
  cross_check_ = true;
#endif

  net_ = FlowNetwork(g.node_count());
  s_star_ = net_.add_node();
  d_star_ = net_.add_node();
  const auto n = static_cast<std::size_t>(g.node_count());
  source_arc_.assign(n, kInvalidArc);
  sink_arc_.assign(n, kInvalidArc);
  source_rate_.assign(n, 0);
  sink_rate_.assign(n, 0);

  for (const RatedNode& rn : sources) {
    LGG_REQUIRE(g.valid_node(rn.node) && rn.rate > 0,
                "IncrementalMaxFlow: bad source");
    LGG_REQUIRE(source_rate_[static_cast<std::size_t>(rn.node)] == 0,
                "IncrementalMaxFlow: duplicate source");
    source_rate_[static_cast<std::size_t>(rn.node)] = rn.rate;
    rate_total_ += rn.rate;
    const Cap cap = source_cap_for(rn.rate);
    source_arc_[static_cast<std::size_t>(rn.node)] =
        net_.add_arc(s_star_, rn.node, cap);
    source_cap_total_ += cap;
  }
  for (const RatedNode& rn : sinks) {
    LGG_REQUIRE(g.valid_node(rn.node) && rn.rate > 0,
                "IncrementalMaxFlow: bad sink");
    LGG_REQUIRE(sink_rate_[static_cast<std::size_t>(rn.node)] == 0,
                "IncrementalMaxFlow: duplicate sink");
    sink_rate_[static_cast<std::size_t>(rn.node)] = rn.rate;
    sink_arc_[static_cast<std::size_t>(rn.node)] =
        net_.add_arc(rn.node, d_star_, rn.rate * options_.sink_scale);
    sink_cap_total_ += rn.rate * options_.sink_scale;
  }
  LGG_REQUIRE(sink_cap_total_ < unbounded_cap_ / 2,
              "IncrementalMaxFlow: sink capacities exceed headroom");

  edge_active_.assign(static_cast<std::size_t>(g.edge_count()), 1);
  forward_edge_arcs_.reserve(static_cast<std::size_t>(g.edge_count()));
  backward_edge_arcs_.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const bool active = mask == nullptr || mask->active(e);
    edge_active_[static_cast<std::size_t>(e)] = active ? 1 : 0;
    const Cap cap = active ? options_.edge_capacity : 0;
    const graph::Endpoints ep = g.endpoints(e);
    forward_edge_arcs_.push_back(net_.add_arc(ep.u, ep.v, cap));
    backward_edge_arcs_.push_back(net_.add_arc(ep.v, ep.u, cap));
  }

  seen_.assign(static_cast<std::size_t>(net_.node_count()), 0);
  parent_arc_.assign(static_cast<std::size_t>(net_.node_count()), kInvalidArc);

  value_ = solve_max_flow(net_, s_star_, d_star_, FlowAlgorithm::kDinic);
  ++stats_.rebuilds;
  if (cross_check_) verify_against_scratch();
}

Cap IncrementalMaxFlow::source_cap_for(Cap rate) const {
  if (rate == 0) return 0;
  return options_.unbounded_sources ? unbounded_cap_
                                    : rate * options_.source_scale;
}

bool IncrementalMaxFlow::edge_active(EdgeId e) const {
  LGG_REQUIRE(g_->valid_edge(e), "edge_active: bad edge");
  return edge_active_[static_cast<std::size_t>(e)] != 0;
}

Cap IncrementalMaxFlow::source_rate(NodeId v) const {
  LGG_REQUIRE(g_->valid_node(v), "source_rate: bad node");
  return source_rate_[static_cast<std::size_t>(v)];
}

Cap IncrementalMaxFlow::sink_rate(NodeId v) const {
  LGG_REQUIRE(g_->valid_node(v), "sink_rate: bad node");
  return sink_rate_[static_cast<std::size_t>(v)];
}

void IncrementalMaxFlow::set_edge_active(EdgeId e, bool active) {
  LGG_REQUIRE(g_->valid_edge(e), "set_edge_active: bad edge");
  if (edge_active(e) == active) return;
  edge_active_[static_cast<std::size_t>(e)] = active ? 1 : 0;
  const Cap cap = active ? options_.edge_capacity : 0;
  apply_capacity(forward_edge_arcs_[static_cast<std::size_t>(e)], cap);
  apply_capacity(backward_edge_arcs_[static_cast<std::size_t>(e)], cap);
  augment();
  ++stats_.patches;
  if (cross_check_) verify_against_scratch();
}

void IncrementalMaxFlow::set_source_rate(NodeId v, Cap rate) {
  LGG_REQUIRE(g_->valid_node(v), "set_source_rate: bad node");
  LGG_REQUIRE(rate >= 0, "set_source_rate: negative rate");
  const auto idx = static_cast<std::size_t>(v);
  if (source_rate_[idx] == rate) return;
  rate_total_ += rate - source_rate_[idx];
  source_rate_[idx] = rate;
  if (source_arc_[idx] == kInvalidArc) {
    source_arc_[idx] = net_.add_arc(s_star_, v, 0);
  }
  const ArcId a = source_arc_[idx];
  const Cap cap = source_cap_for(rate);
  source_cap_total_ += cap - net_.capacity(a);
  apply_capacity(a, cap);
  augment();
  ++stats_.patches;
  if (cross_check_) verify_against_scratch();
}

void IncrementalMaxFlow::set_sink_rate(NodeId v, Cap rate) {
  LGG_REQUIRE(g_->valid_node(v), "set_sink_rate: bad node");
  LGG_REQUIRE(rate >= 0, "set_sink_rate: negative rate");
  const auto idx = static_cast<std::size_t>(v);
  if (sink_rate_[idx] == rate) return;
  sink_rate_[idx] = rate;
  if (sink_arc_[idx] == kInvalidArc) {
    sink_arc_[idx] = net_.add_arc(v, d_star_, 0);
  }
  const Cap cap = rate * options_.sink_scale;
  sink_cap_total_ += cap - net_.capacity(sink_arc_[idx]);
  LGG_REQUIRE(sink_cap_total_ < unbounded_cap_ / 2,
              "set_sink_rate: sink capacities exceed headroom");
  apply_capacity(sink_arc_[idx], cap);
  augment();
  ++stats_.patches;
  if (cross_check_) verify_against_scratch();
}

void IncrementalMaxFlow::apply_capacity(ArcId a, Cap cap) {
  if (net_.capacity(a) == cap) return;
  if (net_.flow(a) > cap) lower_arc_flow(a, cap);
  net_.set_capacity_keep_flow(a, cap);
}

void IncrementalMaxFlow::lower_arc_flow(ArcId a, Cap target) {
  const NodeId u = net_.from(a);
  const NodeId v = net_.to(a);
  Cap x = net_.flow(a) - target;
  while (x > 0) {
    // First choice: reroute the surplus u ⇝ v through the residual graph
    // (this is also what cancels flow cycles through the arc) — the flow
    // value is preserved.
    if (Cap b = find_path(u, v, a); b > 0) {
      b = std::min(b, x);
      push_path(u, v, b);
      net_.push(a ^ 1, b);
      x -= b;
      continue;
    }
    // Otherwise drain to the terminals: give the surplus back along a
    // residual u ⇝ s* path and reclaim the deficit along d* ⇝ v.  Both
    // exist while flow(a) > 0 by flow decomposition.  The first path must
    // be captured before the second BFS reuses the parent scratch.
    Cap b = x;
    path_scratch_.clear();
    if (u != s_star_) {
      const Cap b1 = find_path(u, s_star_, a);
      LGG_REQUIRE(b1 > 0, "lower_arc_flow: no drain path to s*");
      b = std::min(b, b1);
      for (NodeId w = s_star_; w != u;) {
        const ArcId pa = parent_arc_[static_cast<std::size_t>(w)];
        path_scratch_.push_back(pa);
        w = net_.from(pa);
      }
    }
    if (v != d_star_) {
      const Cap b2 = find_path(d_star_, v, a);
      LGG_REQUIRE(b2 > 0, "lower_arc_flow: no drain path from d*");
      b = std::min(b, b2);
    }
    for (const ArcId pa : path_scratch_) net_.push(pa, b);
    if (!path_scratch_.empty()) ++stats_.augment_paths;
    if (v != d_star_) push_path(d_star_, v, b);
    net_.push(a ^ 1, b);
    value_ -= b;
    x -= b;
  }
}

void IncrementalMaxFlow::augment() {
  while (true) {
    const Cap b = find_path(s_star_, d_star_, kInvalidArc);
    if (b == 0) break;
    push_path(s_star_, d_star_, b);
    value_ += b;
  }
}

Cap IncrementalMaxFlow::find_path(NodeId from, NodeId to, ArcId banned) {
  LGG_REQUIRE(from != to, "find_path: trivial endpoints");
  ++epoch_;
  queue_.clear();
  queue_.push_back(from);
  seen_[static_cast<std::size_t>(from)] = epoch_;
  for (std::size_t head = 0; head < queue_.size(); ++head) {
    const NodeId w = queue_[head];
    for (const ArcId a : net_.out_arcs(w)) {
      ++stats_.bfs_arcs;
      if (a == banned || a == (banned ^ 1)) continue;
      if (net_.residual(a) <= 0) continue;
      const NodeId next = net_.to(a);
      if (seen_[static_cast<std::size_t>(next)] == epoch_) continue;
      seen_[static_cast<std::size_t>(next)] = epoch_;
      parent_arc_[static_cast<std::size_t>(next)] = a;
      if (next == to) {
        Cap bottleneck = net_.residual(a);
        for (NodeId x = w; x != from;) {
          const ArcId pa = parent_arc_[static_cast<std::size_t>(x)];
          bottleneck = std::min(bottleneck, net_.residual(pa));
          x = net_.from(pa);
        }
        return bottleneck;
      }
      queue_.push_back(next);
    }
  }
  return 0;
}

void IncrementalMaxFlow::push_path(NodeId from, NodeId to, Cap amount) {
  for (NodeId w = to; w != from;) {
    const ArcId a = parent_arc_[static_cast<std::size_t>(w)];
    net_.push(a, amount);
    w = net_.from(a);
  }
  ++stats_.augment_paths;
}

void IncrementalMaxFlow::verify_against_scratch() const {
  LGG_REQUIRE(net_.flow_value(s_star_) == value_,
              "IncrementalMaxFlow: tracked value out of sync");
  LGG_REQUIRE(flow_is_valid(net_, s_star_, d_star_),
              "IncrementalMaxFlow: stored flow invalid");
  FlowNetwork scratch = net_;
  scratch.reset_flow();
  const Cap fresh = edmonds_karp_max_flow(scratch, s_star_, d_star_);
  LGG_REQUIRE(fresh == value_,
              "IncrementalMaxFlow: diverged from from-scratch max-flow");
}

}  // namespace lgg::flow
