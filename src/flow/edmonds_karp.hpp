// Edmonds–Karp (BFS augmenting paths).  O(V E^2); kept as an independent
// cross-check oracle for the faster solvers in the test suite.
#pragma once

#include "flow/flow_network.hpp"

namespace lgg::flow {

/// Augments `net` to a maximum s-t flow and returns the value added.
Cap edmonds_karp_max_flow(FlowNetwork& net, NodeId source, NodeId sink);

}  // namespace lgg::flow
