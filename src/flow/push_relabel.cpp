#include "flow/push_relabel.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <vector>

namespace lgg::flow {

namespace {

class PushRelabelSolver {
 public:
  PushRelabelSolver(FlowNetwork& net, NodeId source, NodeId sink,
                    PushRelabelRule rule)
      : net_(net),
        source_(source),
        sink_(sink),
        rule_(rule),
        n_(net.node_count()),
        height_(static_cast<std::size_t>(n_), 0),
        excess_(static_cast<std::size_t>(n_), 0),
        current_arc_(static_cast<std::size_t>(n_), 0),
        in_queue_(static_cast<std::size_t>(n_), 0),
        height_count_(2 * static_cast<std::size_t>(n_) + 1, 0),
        buckets_(2 * static_cast<std::size_t>(n_) + 1) {}

  Cap run() {
    height_[static_cast<std::size_t>(source_)] = n_;
    height_count_[0] = static_cast<std::size_t>(n_ - 1);
    height_count_[static_cast<std::size_t>(n_)] = 1;
    // Saturate all arcs out of the source.
    for (const ArcId a : net_.out_arcs(source_)) {
      const Cap r = net_.residual(a);
      if (r > 0) {
        net_.push(a, r);
        excess_[static_cast<std::size_t>(net_.to(a))] += r;
        excess_[static_cast<std::size_t>(source_)] -= r;
        activate(net_.to(a));
      }
    }
    for (NodeId u = next_active(); u != kInvalidNode; u = next_active()) {
      discharge(u);
    }
    return excess_[static_cast<std::size_t>(sink_)];
  }

 private:
  void activate(NodeId v) {
    if (v == source_ || v == sink_) return;
    if (in_queue_[static_cast<std::size_t>(v)]) return;
    in_queue_[static_cast<std::size_t>(v)] = 1;
    if (rule_ == PushRelabelRule::kFifo) {
      fifo_.push_back(v);
    } else {
      const auto h = static_cast<std::size_t>(height_[static_cast<std::size_t>(v)]);
      buckets_[h].push_back(v);
      highest_ = std::max(highest_, h);
    }
  }

  NodeId next_active() {
    if (rule_ == PushRelabelRule::kFifo) {
      while (!fifo_.empty()) {
        const NodeId v = fifo_.front();
        fifo_.pop_front();
        in_queue_[static_cast<std::size_t>(v)] = 0;
        if (excess_[static_cast<std::size_t>(v)] > 0) return v;
      }
      return kInvalidNode;
    }
    while (true) {
      while (highest_ > 0 && buckets_[highest_].empty()) --highest_;
      if (buckets_[highest_].empty()) return kInvalidNode;
      const NodeId v = buckets_[highest_].back();
      buckets_[highest_].pop_back();
      in_queue_[static_cast<std::size_t>(v)] = 0;
      // Height may have changed since enqueue; stale entries are skipped.
      if (excess_[static_cast<std::size_t>(v)] > 0 &&
          static_cast<std::size_t>(height_[static_cast<std::size_t>(v)]) ==
              highest_) {
        return v;
      }
      if (excess_[static_cast<std::size_t>(v)] > 0) activate(v);
    }
  }

  void discharge(NodeId u) {
    const auto arcs = net_.out_arcs(u);
    auto& e = excess_[static_cast<std::size_t>(u)];
    while (e > 0) {
      auto& i = current_arc_[static_cast<std::size_t>(u)];
      if (i >= static_cast<int>(arcs.size())) {
        relabel(u);
        i = 0;
        if (height_[static_cast<std::size_t>(u)] >= 2 * n_) break;
        continue;
      }
      const ArcId a = arcs[static_cast<std::size_t>(i)];
      const NodeId v = net_.to(a);
      if (net_.residual(a) > 0 &&
          height_[static_cast<std::size_t>(u)] ==
              height_[static_cast<std::size_t>(v)] + 1) {
        const Cap amount = std::min(e, net_.residual(a));
        net_.push(a, amount);
        e -= amount;
        excess_[static_cast<std::size_t>(v)] += amount;
        activate(v);
      } else {
        ++i;
      }
    }
  }

  void relabel(NodeId u) {
    const int old = height_[static_cast<std::size_t>(u)];
    int best = 2 * n_;
    for (const ArcId a : net_.out_arcs(u)) {
      if (net_.residual(a) > 0) {
        best = std::min(best, height_[static_cast<std::size_t>(net_.to(a))] + 1);
      }
    }
    height_[static_cast<std::size_t>(u)] = best;
    --height_count_[static_cast<std::size_t>(old)];
    if (best < 2 * n_) ++height_count_[static_cast<std::size_t>(best)];
    // Gap heuristic: if level `old` just emptied, nothing below it can ever
    // reach the sink through that level — lift every node strictly above.
    if (old < n_ && height_count_[static_cast<std::size_t>(old)] == 0) {
      for (NodeId v = 0; v < n_; ++v) {
        const int h = height_[static_cast<std::size_t>(v)];
        if (h > old && h < n_ && v != source_) {
          --height_count_[static_cast<std::size_t>(h)];
          height_[static_cast<std::size_t>(v)] = n_ + 1;
          ++height_count_[static_cast<std::size_t>(n_) + 1];
        }
      }
    }
  }

  FlowNetwork& net_;
  NodeId source_;
  NodeId sink_;
  PushRelabelRule rule_;
  int n_;
  std::vector<int> height_;
  std::vector<Cap> excess_;
  std::vector<int> current_arc_;
  std::vector<unsigned char> in_queue_;
  std::vector<std::size_t> height_count_;
  std::deque<NodeId> fifo_;
  std::vector<std::vector<NodeId>> buckets_;
  std::size_t highest_ = 0;
};

}  // namespace

Cap push_relabel_max_flow(FlowNetwork& net, NodeId source, NodeId sink,
                          PushRelabelRule rule) {
  LGG_REQUIRE(net.valid_node(source) && net.valid_node(sink),
              "push_relabel: bad terminal");
  LGG_REQUIRE(source != sink, "push_relabel: source == sink");
  if (net.node_count() == 0) return 0;
  return PushRelabelSolver(net, source, sink, rule).run();
}

}  // namespace lgg::flow
