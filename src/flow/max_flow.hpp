// Facade over the max-flow solvers plus flow-validity checking.
#pragma once

#include <string_view>

#include "flow/flow_network.hpp"

namespace lgg::flow {

enum class FlowAlgorithm {
  kDinic,
  kPushRelabelFifo,
  kPushRelabelHighest,
  kEdmondsKarp,
};

[[nodiscard]] std::string_view algorithm_name(FlowAlgorithm algo);

/// Computes a maximum s-t flow with the chosen algorithm; `net` must carry
/// zero flow on entry.  Returns the flow value.
Cap solve_max_flow(FlowNetwork& net, NodeId source, NodeId sink,
                   FlowAlgorithm algo = FlowAlgorithm::kDinic);

/// Validates the flow currently stored in `net`: capacity constraints on
/// every arc and conservation at every node except the terminals.
[[nodiscard]] bool flow_is_valid(const FlowNetwork& net, NodeId source,
                                 NodeId sink);

}  // namespace lgg::flow
