// Directed flow network with residual arcs — the substrate for all max-flow
// solvers (Dinic, Goldberg–Tarjan push-relabel, Edmonds–Karp).
//
// Arcs are stored in pairs: forward arc 2i and its residual twin 2i+1, so
// `a ^ 1` is always the reverse arc.  Solvers mutate residual capacities in
// place via push(); flow on a forward arc is recovered as
// capacity(a) - residual(a).
#pragma once

#include <span>
#include <vector>

#include "common/require.hpp"
#include "common/types.hpp"

namespace lgg::flow {

using ArcId = std::int32_t;

class FlowNetwork {
 public:
  FlowNetwork() = default;
  explicit FlowNetwork(NodeId n) {
    LGG_REQUIRE(n >= 0, "FlowNetwork: n >= 0");
    out_.resize(static_cast<std::size_t>(n));
  }

  NodeId add_node() {
    out_.emplace_back();
    return static_cast<NodeId>(out_.size() - 1);
  }

  /// Adds a directed arc u -> v with the given capacity; returns the forward
  /// arc id (always even).  The residual twin (odd id) starts at capacity 0.
  ArcId add_arc(NodeId u, NodeId v, Cap cap);

  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(out_.size());
  }
  /// Total arcs including residual twins (always even).
  [[nodiscard]] ArcId arc_count() const {
    return static_cast<ArcId>(to_.size());
  }

  [[nodiscard]] bool valid_node(NodeId v) const {
    return v >= 0 && v < node_count();
  }
  [[nodiscard]] bool valid_arc(ArcId a) const {
    return a >= 0 && a < arc_count();
  }

  [[nodiscard]] NodeId to(ArcId a) const {
    LGG_ASSERT(valid_arc(a));
    return to_[static_cast<std::size_t>(a)];
  }
  [[nodiscard]] NodeId from(ArcId a) const { return to(a ^ 1); }

  /// Original capacity of the arc (0 for residual twins of forward arcs).
  [[nodiscard]] Cap capacity(ArcId a) const {
    LGG_ASSERT(valid_arc(a));
    return orig_cap_[static_cast<std::size_t>(a)];
  }

  /// Remaining residual capacity.
  [[nodiscard]] Cap residual(ArcId a) const {
    LGG_ASSERT(valid_arc(a));
    return res_cap_[static_cast<std::size_t>(a)];
  }

  /// Net flow currently routed on the arc (negative if the twin carries
  /// more than this direction).
  [[nodiscard]] Cap flow(ArcId a) const {
    return capacity(a) - residual(a);
  }

  /// Arc ids leaving `v` (forward and residual alike).
  [[nodiscard]] std::span<const ArcId> out_arcs(NodeId v) const {
    LGG_ASSERT(valid_node(v));
    return out_[static_cast<std::size_t>(v)];
  }

  /// Moves `amount` units of flow across arc `a` (decreases its residual,
  /// increases the twin's).  Requires amount <= residual(a).
  void push(ArcId a, Cap amount) {
    LGG_REQUIRE(valid_arc(a), "push: bad arc");
    LGG_REQUIRE(amount >= 0 && amount <= residual(a),
                "push: amount exceeds residual capacity");
    res_cap_[static_cast<std::size_t>(a)] -= amount;
    res_cap_[static_cast<std::size_t>(a ^ 1)] += amount;
  }

  /// Restores the zero-flow state (residuals = original capacities).
  void reset_flow() { res_cap_ = orig_cap_; }

  /// Replaces the capacity of an existing arc; resets that arc pair's flow.
  void set_capacity(ArcId a, Cap cap);

  /// Replaces the capacity of an existing arc while preserving the flow
  /// currently routed on the pair.  Requires cap >= flow(a), so the stored
  /// flow stays capacity-respecting; warm-started solvers use this to keep
  /// their state across capacity nudges.
  void set_capacity_keep_flow(ArcId a, Cap cap);

  /// Sum of flow out of `v` minus flow into `v` over forward arcs; zero for
  /// all nodes except source/sink of a valid flow.  O(arcs).
  [[nodiscard]] Cap excess_at(NodeId v) const;

  /// Value of the current flow out of `source` (net outflow).
  [[nodiscard]] Cap flow_value(NodeId source) const {
    return -excess_at(source);
  }

 private:
  std::vector<NodeId> to_;
  std::vector<Cap> orig_cap_;
  std::vector<Cap> res_cap_;
  std::vector<std::vector<ArcId>> out_;
};

}  // namespace lgg::flow
