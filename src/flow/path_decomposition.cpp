#include "flow/path_decomposition.hpp"

#include <algorithm>
#include <limits>

namespace lgg::flow {

namespace {

/// Walks flow-carrying forward arcs from `start`, cancelling any cycle the
/// walk closes (truncating the stack), until the walk dies at a node with
/// no outgoing flow.  Returns the surviving simple path (possibly empty).
/// `on_path` must be all -1 on entry and is restored on exit; it stores the
/// stack position of each node currently on the path.
struct Walk {
  std::vector<NodeId> nodes;
  std::vector<ArcId> arcs;
};

Walk walk_and_cancel(FlowNetwork& net, NodeId start,
                     std::vector<int>& on_path) {
  Walk w;
  w.nodes.push_back(start);
  on_path[static_cast<std::size_t>(start)] = 0;
  NodeId u = start;
  while (true) {
    ArcId next = kInvalidEdge;
    for (const ArcId a : net.out_arcs(u)) {
      if ((a & 1) == 0 && net.flow(a) > 0) {
        next = a;
        break;
      }
    }
    if (next == kInvalidEdge) break;
    const NodeId v = net.to(next);
    const int pos = on_path[static_cast<std::size_t>(v)];
    if (pos >= 0) {
      // Cycle closed: arcs[pos..] plus `next`.  Cancel it by bottleneck.
      Cap bottleneck = net.flow(next);
      for (std::size_t i = static_cast<std::size_t>(pos); i < w.arcs.size();
           ++i) {
        bottleneck = std::min(bottleneck, net.flow(w.arcs[i]));
      }
      net.push(next ^ 1, bottleneck);
      for (std::size_t i = static_cast<std::size_t>(pos); i < w.arcs.size();
           ++i) {
        net.push(w.arcs[i] ^ 1, bottleneck);
      }
      // Truncate the stack back to v and continue from there.
      for (std::size_t i = static_cast<std::size_t>(pos) + 1;
           i < w.nodes.size(); ++i) {
        on_path[static_cast<std::size_t>(w.nodes[i])] = -1;
      }
      w.nodes.resize(static_cast<std::size_t>(pos) + 1);
      w.arcs.resize(static_cast<std::size_t>(pos));
      u = v;
      continue;
    }
    w.arcs.push_back(next);
    w.nodes.push_back(v);
    on_path[static_cast<std::size_t>(v)] =
        static_cast<int>(w.nodes.size()) - 1;
    u = v;
  }
  for (const NodeId v : w.nodes) on_path[static_cast<std::size_t>(v)] = -1;
  return w;
}

}  // namespace

namespace {

/// DFS over flow-carrying arcs; returns the arcs of one directed cycle, or
/// an empty vector if the flow subgraph is acyclic.
std::vector<ArcId> find_flow_cycle(const FlowNetwork& net) {
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> color(static_cast<std::size_t>(net.node_count()), kWhite);
  std::vector<ArcId> stack_arcs;
  std::vector<NodeId> stack_nodes;
  std::vector<std::size_t> iter(static_cast<std::size_t>(net.node_count()), 0);
  for (NodeId root = 0; root < net.node_count(); ++root) {
    if (color[static_cast<std::size_t>(root)] != kWhite) continue;
    stack_nodes.assign(1, root);
    stack_arcs.clear();
    color[static_cast<std::size_t>(root)] = kGray;
    iter[static_cast<std::size_t>(root)] = 0;
    while (!stack_nodes.empty()) {
      const NodeId u = stack_nodes.back();
      const auto arcs = net.out_arcs(u);
      auto& i = iter[static_cast<std::size_t>(u)];
      bool descended = false;
      while (i < arcs.size()) {
        const ArcId a = arcs[i++];
        if ((a & 1) != 0 || net.flow(a) <= 0) continue;
        const NodeId v = net.to(a);
        if (color[static_cast<std::size_t>(v)] == kGray) {
          // Cycle: arcs on the stack from v's position, plus `a`.
          std::size_t begin = 0;
          while (stack_nodes[begin] != v) ++begin;
          std::vector<ArcId> cycle(stack_arcs.begin() +
                                       static_cast<std::ptrdiff_t>(begin),
                                   stack_arcs.end());
          cycle.push_back(a);
          return cycle;
        }
        if (color[static_cast<std::size_t>(v)] == kWhite) {
          color[static_cast<std::size_t>(v)] = kGray;
          iter[static_cast<std::size_t>(v)] = 0;
          stack_nodes.push_back(v);
          stack_arcs.push_back(a);
          descended = true;
          break;
        }
      }
      if (!descended && !stack_nodes.empty() && stack_nodes.back() == u &&
          i >= arcs.size()) {
        color[static_cast<std::size_t>(u)] = kBlack;
        stack_nodes.pop_back();
        if (!stack_arcs.empty()) stack_arcs.pop_back();
      }
    }
  }
  return {};
}

}  // namespace

void cancel_flow_cycles(FlowNetwork& net) {
  while (true) {
    const std::vector<ArcId> cycle = find_flow_cycle(net);
    if (cycle.empty()) return;
    Cap bottleneck = std::numeric_limits<Cap>::max();
    for (const ArcId a : cycle) bottleneck = std::min(bottleneck, net.flow(a));
    LGG_ASSERT(bottleneck > 0);
    for (const ArcId a : cycle) net.push(a ^ 1, bottleneck);
  }
}

std::vector<FlowPath> decompose_into_paths(FlowNetwork& net, NodeId source,
                                           NodeId sink) {
  LGG_REQUIRE(net.valid_node(source) && net.valid_node(sink),
              "decompose_into_paths: bad terminal");
  std::vector<int> on_path(static_cast<std::size_t>(net.node_count()), -1);
  std::vector<FlowPath> paths;
  // Phase 1: peel source-to-sink paths (cancelling cycles the walks close).
  while (true) {
    Walk w = walk_and_cancel(net, source, on_path);
    if (w.arcs.empty() || w.nodes.back() != sink) break;
    Cap bottleneck = std::numeric_limits<Cap>::max();
    for (const ArcId a : w.arcs) bottleneck = std::min(bottleneck, net.flow(a));
    for (const ArcId a : w.arcs) net.push(a ^ 1, bottleneck);
    paths.push_back(FlowPath{std::move(w.nodes), std::move(w.arcs),
                             bottleneck});
  }
  // Phase 2: whatever remains is a circulation; cancel it so the network
  // ends at zero flow.
  cancel_flow_cycles(net);
  return paths;
}

}  // namespace lgg::flow
