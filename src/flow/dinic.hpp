// Dinic's blocking-flow algorithm.  O(V^2 E) in general, O(E sqrt(V)) on
// unit-capacity networks — which is exactly the regime of the paper's G*
// (all internal links have capacity 1), so this is the default solver.
#pragma once

#include "flow/flow_network.hpp"

namespace lgg::flow {

/// Augments `net` to a maximum s-t flow and returns the value added.
/// The network may already carry flow; Dinic continues from it.
Cap dinic_max_flow(FlowNetwork& net, NodeId source, NodeId sink);

}  // namespace lgg::flow
