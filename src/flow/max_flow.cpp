#include "flow/max_flow.hpp"

#include "flow/dinic.hpp"
#include "flow/edmonds_karp.hpp"
#include "flow/push_relabel.hpp"

namespace lgg::flow {

std::string_view algorithm_name(FlowAlgorithm algo) {
  switch (algo) {
    case FlowAlgorithm::kDinic:
      return "dinic";
    case FlowAlgorithm::kPushRelabelFifo:
      return "push_relabel_fifo";
    case FlowAlgorithm::kPushRelabelHighest:
      return "push_relabel_highest";
    case FlowAlgorithm::kEdmondsKarp:
      return "edmonds_karp";
  }
  return "unknown";
}

Cap solve_max_flow(FlowNetwork& net, NodeId source, NodeId sink,
                   FlowAlgorithm algo) {
  switch (algo) {
    case FlowAlgorithm::kDinic:
      return dinic_max_flow(net, source, sink);
    case FlowAlgorithm::kPushRelabelFifo:
      return push_relabel_max_flow(net, source, sink,
                                   PushRelabelRule::kFifo);
    case FlowAlgorithm::kPushRelabelHighest:
      return push_relabel_max_flow(net, source, sink,
                                   PushRelabelRule::kHighestLabel);
    case FlowAlgorithm::kEdmondsKarp:
      return edmonds_karp_max_flow(net, source, sink);
  }
  LGG_REQUIRE(false, "solve_max_flow: unknown algorithm");
  return 0;
}

bool flow_is_valid(const FlowNetwork& net, NodeId source, NodeId sink) {
  for (ArcId a = 0; a < net.arc_count(); ++a) {
    if (net.residual(a) < 0) return false;
  }
  for (NodeId v = 0; v < net.node_count(); ++v) {
    if (v == source || v == sink) continue;
    if (net.excess_at(v) != 0) return false;
  }
  return true;
}

}  // namespace lgg::flow
