#include "flow/min_cut.hpp"

#include <queue>

namespace lgg::flow {

namespace {

/// Forward residual reachability from `start`.
std::vector<char> residual_reach(const FlowNetwork& net, NodeId start) {
  std::vector<char> seen(static_cast<std::size_t>(net.node_count()), 0);
  std::queue<NodeId> bfs;
  seen[static_cast<std::size_t>(start)] = 1;
  bfs.push(start);
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    for (const ArcId a : net.out_arcs(u)) {
      const NodeId v = net.to(a);
      if (net.residual(a) > 0 && !seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        bfs.push(v);
      }
    }
  }
  return seen;
}

/// Backward residual reachability: nodes that can reach `target` through
/// residual arcs.  v reaches target iff some residual arc v->w with w
/// already reaching.  Computed as forward reachability on reversed arcs:
/// arc a (u->v, residual r) is traversed backwards when residual(a) > 0.
std::vector<char> residual_reach_to(const FlowNetwork& net, NodeId target) {
  std::vector<char> seen(static_cast<std::size_t>(net.node_count()), 0);
  std::queue<NodeId> bfs;
  seen[static_cast<std::size_t>(target)] = 1;
  bfs.push(target);
  while (!bfs.empty()) {
    const NodeId v = bfs.front();
    bfs.pop();
    // Any arc a = (u -> v) with residual > 0 lets u reach v.  Arcs *into*
    // v are the twins of arcs out of v.
    for (const ArcId out : net.out_arcs(v)) {
      const ArcId a = out ^ 1;  // arc (u -> v)
      const NodeId u = net.to(out);
      if (net.residual(a) > 0 && !seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        bfs.push(u);
      }
    }
  }
  return seen;
}

}  // namespace

CutSides min_cut_sides(const FlowNetwork& net, NodeId source, NodeId sink) {
  LGG_REQUIRE(net.valid_node(source) && net.valid_node(sink),
              "min_cut_sides: bad terminal");
  CutSides sides;
  sides.min_side = residual_reach(net, source);
  LGG_REQUIRE(!sides.min_side[static_cast<std::size_t>(sink)],
              "min_cut_sides: network does not hold a maximum flow");
  const auto reaches_sink = residual_reach_to(net, sink);
  sides.max_side.assign(static_cast<std::size_t>(net.node_count()), 0);
  for (NodeId v = 0; v < net.node_count(); ++v) {
    sides.max_side[static_cast<std::size_t>(v)] =
        reaches_sink[static_cast<std::size_t>(v)] ? 0 : 1;
  }
  return sides;
}

Cap cut_capacity(const FlowNetwork& net, const std::vector<char>& side_a) {
  LGG_REQUIRE(static_cast<NodeId>(side_a.size()) == net.node_count(),
              "cut_capacity: indicator size mismatch");
  Cap total = 0;
  for (ArcId a = 0; a < net.arc_count(); a += 2) {
    const NodeId u = net.from(a);
    const NodeId v = net.to(a);
    if (side_a[static_cast<std::size_t>(u)] &&
        !side_a[static_cast<std::size_t>(v)]) {
      total += net.capacity(a);
    }
  }
  return total;
}

namespace {

/// Residual reachability from a seed set.
std::vector<char> residual_reach_from_set(const FlowNetwork& net,
                                          std::vector<char> seen) {
  std::queue<NodeId> bfs;
  for (NodeId v = 0; v < net.node_count(); ++v) {
    if (seen[static_cast<std::size_t>(v)]) bfs.push(v);
  }
  while (!bfs.empty()) {
    const NodeId u = bfs.front();
    bfs.pop();
    for (const ArcId a : net.out_arcs(u)) {
      const NodeId v = net.to(a);
      if (net.residual(a) > 0 && !seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        bfs.push(v);
      }
    }
  }
  return seen;
}

}  // namespace

CutLocation cut_location(const FlowNetwork& net, NodeId source, NodeId sink) {
  const CutSides sides = min_cut_sides(net, source, sink);
  const auto n = net.node_count();
  CutLocation loc;

  auto count_side = [n](const std::vector<char>& side) {
    NodeId c = 0;
    for (NodeId v = 0; v < n; ++v) c += side[static_cast<std::size_t>(v)] ? 1 : 0;
    return c;
  };
  const NodeId min_count = count_side(sides.min_side);
  const NodeId max_count = count_side(sides.max_side);

  loc.at_source = (min_count == 1);    // A_min == {source}
  loc.at_sink = (max_count == n - 1);  // B_max == {sink}
  // Every min cut's source side lies between A_min and A_max; the cut at
  // the source is unique iff the extremes coincide there.
  loc.unique_at_source = loc.at_source && (max_count == 1);

  // An internal min cut exists iff the residual closure of A_min together
  // with some real node x stays clear of the sink while leaving a real
  // node on the far side: that closure is then the source side of a min
  // cut (no residual arc leaves a reachability-closed set).
  for (NodeId x = 0; x < n && !loc.internal; ++x) {
    if (x == source || x == sink) continue;
    if (!sides.max_side[static_cast<std::size_t>(x)]) continue;  // closure
                                                                 // would hit
                                                                 // the sink
    std::vector<char> seed = sides.min_side;
    if (seed[static_cast<std::size_t>(x)]) {
      // x already on the minimal source side: A_min itself is internal if
      // it also leaves a real node outside.
      if (min_count > 1 && n - min_count > 1) loc.internal = true;
      continue;
    }
    seed[static_cast<std::size_t>(x)] = 1;
    const std::vector<char> closure = residual_reach_from_set(net, seed);
    if (closure[static_cast<std::size_t>(sink)]) continue;
    const NodeId closure_count = count_side(closure);
    if (closure_count > 1 && n - closure_count > 1) loc.internal = true;
  }
  return loc;
}

}  // namespace lgg::flow
