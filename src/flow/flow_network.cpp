#include "flow/flow_network.hpp"

namespace lgg::flow {

ArcId FlowNetwork::add_arc(NodeId u, NodeId v, Cap cap) {
  LGG_REQUIRE(valid_node(u) && valid_node(v), "add_arc: bad endpoint");
  LGG_REQUIRE(cap >= 0, "add_arc: negative capacity");
  const auto fwd = static_cast<ArcId>(to_.size());
  to_.push_back(v);
  orig_cap_.push_back(cap);
  res_cap_.push_back(cap);
  to_.push_back(u);
  orig_cap_.push_back(0);
  res_cap_.push_back(0);
  out_[static_cast<std::size_t>(u)].push_back(fwd);
  out_[static_cast<std::size_t>(v)].push_back(fwd + 1);
  return fwd;
}

void FlowNetwork::set_capacity(ArcId a, Cap cap) {
  LGG_REQUIRE(valid_arc(a), "set_capacity: bad arc");
  LGG_REQUIRE((a & 1) == 0, "set_capacity: must address the forward arc");
  LGG_REQUIRE(cap >= 0, "set_capacity: negative capacity");
  orig_cap_[static_cast<std::size_t>(a)] = cap;
  res_cap_[static_cast<std::size_t>(a)] = cap;
  res_cap_[static_cast<std::size_t>(a ^ 1)] = 0;
}

void FlowNetwork::set_capacity_keep_flow(ArcId a, Cap cap) {
  LGG_REQUIRE(valid_arc(a), "set_capacity_keep_flow: bad arc");
  LGG_REQUIRE((a & 1) == 0,
              "set_capacity_keep_flow: must address the forward arc");
  const Cap f = flow(a);
  LGG_REQUIRE(cap >= f && cap >= 0,
              "set_capacity_keep_flow: capacity below current flow");
  orig_cap_[static_cast<std::size_t>(a)] = cap;
  res_cap_[static_cast<std::size_t>(a)] = cap - f;
}

Cap FlowNetwork::excess_at(NodeId v) const {
  LGG_REQUIRE(valid_node(v), "excess_at: bad node");
  Cap in = 0, out = 0;
  for (ArcId a = 0; a < arc_count(); a += 2) {
    const Cap f = flow(a);
    if (from(a) == v) out += f;
    if (to(a) == v) in += f;
  }
  return in - out;
}

}  // namespace lgg::flow
