#include "flow/feasibility.hpp"

#include <algorithm>
#include <numeric>

#include "flow/max_flow.hpp"

namespace lgg::flow {

namespace {

Cap total_rate(std::span<const RatedNode> nodes) {
  Cap total = 0;
  for (const RatedNode& rn : nodes) total += rn.rate;
  return total;
}

void validate_rated(const graph::Multigraph& g,
                    std::span<const RatedNode> nodes, const char* kind) {
  for (const RatedNode& rn : nodes) {
    LGG_REQUIRE(g.valid_node(rn.node), std::string(kind) + ": bad node id");
    LGG_REQUIRE(rn.rate > 0, std::string(kind) + ": rate must be positive");
  }
}

}  // namespace

ExtendedGraph build_extended_graph(const graph::Multigraph& g,
                                   std::span<const RatedNode> sources,
                                   std::span<const RatedNode> sinks,
                                   const ExtendedGraphOptions& options) {
  validate_rated(g, sources, sinks.empty() && sources.empty() ? "sources"
                                                              : "sources");
  validate_rated(g, sinks, "sinks");
  LGG_REQUIRE(options.edge_capacity >= 1, "edge_capacity >= 1");
  LGG_REQUIRE(options.sink_scale >= 1, "sink_scale >= 1");
  LGG_REQUIRE(options.source_scale >= 1 || options.unbounded_sources,
              "source_scale >= 1");

  ExtendedGraph ext;
  ext.net = FlowNetwork(g.node_count());
  ext.s_star = ext.net.add_node();
  ext.d_star = ext.net.add_node();

  // A capacity that no single cut can be limited by: above the sum of all
  // finite capacities in the instance.
  Cap unbounded = 1;
  unbounded += 2 * static_cast<Cap>(g.edge_count()) * options.edge_capacity;
  for (const RatedNode& rn : sinks) unbounded += rn.rate * options.sink_scale;
  for (const RatedNode& rn : sources) {
    unbounded += rn.rate * std::max<Cap>(options.source_scale, 1);
  }

  ext.source_arcs.reserve(sources.size());
  for (const RatedNode& rn : sources) {
    const Cap cap = options.unbounded_sources
                        ? unbounded
                        : rn.rate * options.source_scale;
    ext.source_arcs.push_back(ext.net.add_arc(ext.s_star, rn.node, cap));
  }
  ext.sink_arcs.reserve(sinks.size());
  for (const RatedNode& rn : sinks) {
    ext.sink_arcs.push_back(
        ext.net.add_arc(rn.node, ext.d_star, rn.rate * options.sink_scale));
  }
  ext.forward_edge_arcs.reserve(static_cast<std::size_t>(g.edge_count()));
  ext.backward_edge_arcs.reserve(static_cast<std::size_t>(g.edge_count()));
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::Endpoints ep = g.endpoints(e);
    ext.forward_edge_arcs.push_back(
        ext.net.add_arc(ep.u, ep.v, options.edge_capacity));
    ext.backward_edge_arcs.push_back(
        ext.net.add_arc(ep.v, ep.u, options.edge_capacity));
  }
  return ext;
}

namespace {

/// True iff the network is feasible when source rates are multiplied by
/// numer/kEpsilonDenom (all other capacities scaled by kEpsilonDenom).
bool feasible_at_scale(const graph::Multigraph& g,
                       std::span<const RatedNode> sources,
                       std::span<const RatedNode> sinks, Cap numer) {
  ExtendedGraphOptions opt;
  opt.edge_capacity = kEpsilonDenom;
  opt.sink_scale = kEpsilonDenom;
  opt.source_scale = numer;
  ExtendedGraph ext = build_extended_graph(g, sources, sinks, opt);
  const Cap want = numer * total_rate(sources);
  const Cap value =
      solve_max_flow(ext.net, ext.s_star, ext.d_star, FlowAlgorithm::kDinic);
  return value == want;
}

}  // namespace

FeasibilityReport analyze_feasibility(const graph::Multigraph& g,
                                      std::span<const RatedNode> sources,
                                      std::span<const RatedNode> sinks) {
  LGG_REQUIRE(!sources.empty(), "analyze_feasibility: no sources");
  LGG_REQUIRE(!sinks.empty(), "analyze_feasibility: no sinks");
  FeasibilityReport report;
  report.arrival_rate = total_rate(sources);

  {  // f*: unbounded source arcs.
    ExtendedGraphOptions opt;
    opt.unbounded_sources = true;
    ExtendedGraph ext = build_extended_graph(g, sources, sinks, opt);
    report.fstar = solve_max_flow(ext.net, ext.s_star, ext.d_star,
                                  FlowAlgorithm::kDinic);
  }
  {  // Exact capacities: feasibility and cut placement.
    ExtendedGraph ext = build_extended_graph(g, sources, sinks);
    report.max_flow_at_rates = solve_max_flow(ext.net, ext.s_star, ext.d_star,
                                              FlowAlgorithm::kDinic);
    report.feasible = (report.max_flow_at_rates == report.arrival_rate);
    report.location = cut_location(ext.net, ext.s_star, ext.d_star);
  }
  if (report.feasible) {
    // Binary search the largest feasible numerator a >= kEpsilonDenom.
    // Feasibility is monotone decreasing in a (cut values are linear in a).
    Cap lo = kEpsilonDenom;  // known feasible
    Cap hi =                 // no cut can admit more than f* total
        (report.fstar / std::max<Cap>(report.arrival_rate, 1) + 2) *
        kEpsilonDenom;
    while (lo < hi) {
      const Cap mid = lo + (hi - lo + 1) / 2;
      if (feasible_at_scale(g, sources, sinks, mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    report.epsilon =
        static_cast<double>(lo - kEpsilonDenom) /
        static_cast<double>(kEpsilonDenom);
    report.unsaturated = (lo > kEpsilonDenom);
  }
  return report;
}

double max_arrival_scaling(const graph::Multigraph& g,
                           std::span<const RatedNode> sources,
                           std::span<const RatedNode> sinks) {
  LGG_REQUIRE(!sources.empty(), "max_arrival_scaling: no sources");
  LGG_REQUIRE(!sinks.empty(), "max_arrival_scaling: no sinks");
  // Find the largest feasible numerator by doubling then binary search,
  // starting from 0 (always feasible: zero flow).
  Cap rate = total_rate(sources);
  if (rate == 0) return 0.0;
  ExtendedGraphOptions probe;
  probe.unbounded_sources = true;
  ExtendedGraph ext = build_extended_graph(g, sources, sinks, probe);
  const Cap fstar =
      solve_max_flow(ext.net, ext.s_star, ext.d_star, FlowAlgorithm::kDinic);
  const Cap ceiling = (fstar / rate + 2) * kEpsilonDenom;
  Cap lo = 0, hi = ceiling;
  while (lo < hi) {
    const Cap mid = lo + (hi - lo + 1) / 2;
    if (feasible_at_scale(g, sources, sinks, mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return static_cast<double>(lo) / static_cast<double>(kEpsilonDenom);
}

}  // namespace lgg::flow
