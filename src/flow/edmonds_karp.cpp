#include "flow/edmonds_karp.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

namespace lgg::flow {

Cap edmonds_karp_max_flow(FlowNetwork& net, NodeId source, NodeId sink) {
  LGG_REQUIRE(net.valid_node(source) && net.valid_node(sink),
              "edmonds_karp: bad terminal");
  LGG_REQUIRE(source != sink, "edmonds_karp: source == sink");
  Cap total = 0;
  std::vector<ArcId> parent_arc(static_cast<std::size_t>(net.node_count()));
  while (true) {
    std::fill(parent_arc.begin(), parent_arc.end(), kInvalidEdge);
    std::queue<NodeId> bfs;
    bfs.push(source);
    parent_arc[static_cast<std::size_t>(source)] = -2;  // visited sentinel
    bool reached = false;
    while (!bfs.empty() && !reached) {
      const NodeId u = bfs.front();
      bfs.pop();
      for (const ArcId a : net.out_arcs(u)) {
        const NodeId v = net.to(a);
        if (net.residual(a) > 0 &&
            parent_arc[static_cast<std::size_t>(v)] == kInvalidEdge) {
          parent_arc[static_cast<std::size_t>(v)] = a;
          if (v == sink) {
            reached = true;
            break;
          }
          bfs.push(v);
        }
      }
    }
    if (!reached) break;
    // Bottleneck along the path, then augment.
    Cap bottleneck = std::numeric_limits<Cap>::max();
    for (NodeId v = sink; v != source;) {
      const ArcId a = parent_arc[static_cast<std::size_t>(v)];
      bottleneck = std::min(bottleneck, net.residual(a));
      v = net.from(a);
    }
    for (NodeId v = sink; v != source;) {
      const ArcId a = parent_arc[static_cast<std::size_t>(v)];
      net.push(a, bottleneck);
      v = net.from(a);
    }
    total += bottleneck;
  }
  return total;
}

}  // namespace lgg::flow
