// Goldberg–Tarjan push-relabel maximum flow — the paper's reference [6] for
// the distributed gradient intuition behind LGG.  Two active-node selection
// rules are provided (FIFO and highest-label), both with the gap heuristic.
// The algorithm is run to completion (not stopped at a max preflow), so the
// result is a valid flow usable for cuts and path decomposition.
#pragma once

#include "flow/flow_network.hpp"

namespace lgg::flow {

enum class PushRelabelRule {
  kFifo,
  kHighestLabel,
};

/// Computes a maximum s-t flow in `net` (which must carry zero flow) and
/// returns its value.
Cap push_relabel_max_flow(FlowNetwork& net, NodeId source, NodeId sink,
                          PushRelabelRule rule = PushRelabelRule::kHighestLabel);

}  // namespace lgg::flow
