#include "control/governor.hpp"

#include <algorithm>
#include <cmath>

#include "common/binio.hpp"
#include "common/require.hpp"

namespace lgg::control {

AdmissionGovernor::AdmissionGovernor(const core::SdNetwork& net,
                                     GovernorOptions options)
    : options_(options),
      sentinel_(net, options.sentinel),
      policy_(BrownoutPolicy::Options{options.min_multiplier,
                                      options.brownout}) {
  LGG_REQUIRE(options_.target_eps >= 0.0, "governor: negative target_eps");
  LGG_REQUIRE(options_.beta > 0.0 && options_.beta < 1.0,
              "governor: beta outside (0, 1)");
  LGG_REQUIRE(options_.probe_increment > 0.0,
              "governor: probe_increment <= 0");
  LGG_REQUIRE(options_.min_multiplier > 0.0 && options_.min_multiplier <= 1.0,
              "governor: min_multiplier outside (0, 1]");
  LGG_REQUIRE(options_.hold_steps >= 0, "governor: negative hold_steps");
  LGG_REQUIRE(options_.quiet_steps >= 0, "governor: negative quiet_steps");
  const auto sources = net.sources();
  sources_.assign(sources.begin(), sources.end());
  rates_.reserve(sources_.size());
  for (const NodeId v : sources_) rates_.push_back(net.spec(v).in);
  source_of_.assign(static_cast<std::size_t>(net.node_count()), -1);
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    source_of_[static_cast<std::size_t>(sources_[i])] =
        static_cast<std::int32_t>(i);
  }
  effective_.assign(sources_.size(), 1.0);
  credit_.assign(sources_.size(), 0.0);
  offered_.assign(sources_.size(), 0);
  shed_.assign(sources_.size(), 0);
}

std::size_t AdmissionGovernor::source_index(NodeId v) const {
  LGG_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < source_of_.size() &&
                  source_of_[static_cast<std::size_t>(v)] >= 0,
              "governor: admit() for a non-source node");
  return static_cast<std::size_t>(source_of_[static_cast<std::size_t>(v)]);
}

void AdmissionGovernor::begin_step(const StepContext& ctx) {
  if (ctx.topology_version != last_topology_version_) {
    last_topology_version_ = ctx.topology_version;
    if (options_.incremental_certificates) {
      // Patch the warm-started certificate in place: the verdict is exact
      // for the post-churn topology before this step's admissions, so no
      // stale window ever opens.
      sentinel_.patch_certificate(ctx.active_mask, ctx.churn);
      last_cert_t_ = ctx.t;
    } else {
      cert_dirty_ = true;
      sentinel_.mark_certificate_stale();
    }
  }
  if (cert_dirty_ && ctx.t - last_cert_t_ >= options_.certificate_backoff) {
    sentinel_.refresh_certificate(ctx.active_mask);
    cert_dirty_ = false;
    last_cert_t_ = ctx.t;
  }
  sentinel_.observe(ctx.t, ctx.potential);

  const SaturationMode mode = sentinel_.mode();
  const bool hold_ok =
      !has_changed_ || ctx.t - last_change_t_ >= options_.hold_steps;
  if (mode == SaturationMode::kOverloaded) {
    if (multiplier_ > options_.min_multiplier && hold_ok) {
      multiplier_ =
          std::max(options_.min_multiplier, multiplier_ * options_.beta);
      last_change_t_ = ctx.t;
      has_changed_ = true;
      if (!engaged_) {
        engaged_ = true;
        overload_bound_ = std::max(
            1e6,
            256.0 * std::max(ctx.potential, sentinel_.growth_bound()));
      }
    }
  } else if (mode == SaturationMode::kUnsaturated && multiplier_ < 1.0 &&
             hold_ok && sentinel_.time_in_mode() >= options_.quiet_steps &&
             sentinel_.drift_estimate() <=
                 options_.target_eps * sentinel_.growth_bound()) {
    multiplier_ = std::min(1.0, multiplier_ + options_.probe_increment);
    last_change_t_ = ctx.t;
    has_changed_ = true;
    if (multiplier_ >= 1.0) {
      // Snapped back to full admission: clear the fractional credits so a
      // later engagement starts from the same state as a fresh governor.
      multiplier_ = 1.0;
      std::fill(credit_.begin(), credit_.end(), 0.0);
    }
  }

  if (multiplier_ < 1.0) {
    policy_.apply(rates_, multiplier_, effective_);
  }

  if (multiplier_gauge_ != nullptr) {
    multiplier_gauge_->set(multiplier_);
    drift_gauge_->set(sentinel_.drift_estimate());
    mode_gauge_->set(static_cast<double>(static_cast<int>(mode)));
    time_in_mode_gauge_->set(static_cast<double>(sentinel_.time_in_mode()));
    cert_patches_gauge_->set(
        static_cast<double>(sentinel_.certificate_patches()));
    cert_recomputes_gauge_->set(
        static_cast<double>(sentinel_.certificate_recomputes()));
    cert_age_gauge_->set(static_cast<double>(ctx.t - last_cert_t_));
  }
}

PacketCount AdmissionGovernor::admit(NodeId v, Cap in_rate,
                                     PacketCount offered) {
  LGG_REQUIRE(offered >= 0, "governor: negative offer");
  if (v < 0 || static_cast<std::size_t>(v) >= source_of_.size() ||
      source_of_[static_cast<std::size_t>(v)] < 0) {
    // A source the governor was not built with — churn nudged a node's
    // in-rate above zero mid-run.  Its load is still visible to the
    // sentinel through P_t and the patched certificate; per-source gating
    // and fairness accounting cover only the construction-time sources.
    if (offered > in_rate) sentinel_.note_noncompliant_offer();
    return offered;
  }
  const std::size_t idx = source_index(v);
  offered_[idx] += offered;
  if (offered > in_rate) sentinel_.note_noncompliant_offer();
  // Full admission is the exact fast path: the packet count never meets a
  // floating-point value, so governed == ungoverned bit-for-bit.
  if (multiplier_ >= 1.0) return offered;

  const double m = effective_[idx];
  credit_[idx] += m * static_cast<double>(offered);
  PacketCount admitted = static_cast<PacketCount>(credit_[idx]);
  admitted = std::clamp<PacketCount>(admitted, 0, offered);
  credit_[idx] -= static_cast<double>(admitted);
  const PacketCount dropped = offered - admitted;
  if (dropped > 0) {
    shed_[idx] += dropped;
    total_shed_ += dropped;
    if (shed_counter_ != nullptr) {
      shed_counter_->add(static_cast<std::uint64_t>(dropped));
    }
  }
  return admitted;
}

void AdmissionGovernor::register_metrics(obs::MetricRegistry& registry) {
  multiplier_gauge_ = &registry.gauge("governor.multiplier");
  drift_gauge_ = &registry.gauge("governor.drift_estimate");
  mode_gauge_ = &registry.gauge("governor.mode");
  time_in_mode_gauge_ = &registry.gauge("governor.time_in_mode");
  cert_patches_gauge_ = &registry.gauge("governor.cert_patches");
  cert_recomputes_gauge_ = &registry.gauge("governor.cert_recomputes");
  cert_age_gauge_ = &registry.gauge("governor.cert_age");
  shed_counter_ = &registry.counter("governor.shed");
  multiplier_gauge_->set(multiplier_);
  mode_gauge_->set(static_cast<double>(mode()));
}

void AdmissionGovernor::save_state(std::ostream& out) const {
  binio::write_f64(out, multiplier_);
  binio::write_i64(out, last_change_t_);
  binio::write_u8(out, has_changed_ ? 1 : 0);
  binio::write_u8(out, engaged_ ? 1 : 0);
  binio::write_f64(out, overload_bound_);
  binio::write_u64(out, last_topology_version_);
  binio::write_u8(out, cert_dirty_ ? 1 : 0);
  binio::write_i64(out, last_cert_t_);
  binio::write_i64(out, total_shed_);
  binio::write_u32(out, static_cast<std::uint32_t>(sources_.size()));
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    binio::write_f64(out, credit_[i]);
    binio::write_i64(out, offered_[i]);
    binio::write_i64(out, shed_[i]);
  }
  sentinel_.save_state(out);
}

void AdmissionGovernor::load_state(std::istream& in) {
  multiplier_ = binio::read_f64(in);
  LGG_REQUIRE(multiplier_ > 0.0 && multiplier_ <= 1.0,
              "governor state: multiplier out of range");
  last_change_t_ = binio::read_i64(in);
  has_changed_ = binio::read_u8(in) != 0;
  engaged_ = binio::read_u8(in) != 0;
  overload_bound_ = binio::read_f64(in);
  last_topology_version_ = binio::read_u64(in);
  cert_dirty_ = binio::read_u8(in) != 0;
  last_cert_t_ = binio::read_i64(in);
  total_shed_ = binio::read_i64(in);
  const std::uint32_t count = binio::read_u32(in);
  LGG_REQUIRE(count == sources_.size(),
              "governor state: source count mismatch");
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    credit_[i] = binio::read_f64(in);
    offered_[i] = binio::read_i64(in);
    shed_[i] = binio::read_i64(in);
  }
  sentinel_.load_state(in);
  // effective_ is derived; begin_step recomputes it before any admit.
  std::fill(effective_.begin(), effective_.end(), multiplier_);
}

}  // namespace lgg::control
