// Online saturation detection for the potential P_t = Σ q².
//
// The paper's dichotomy makes P_t drift the natural control signal: an
// unsaturated network obeys Property 1 (ΔP ≤ 5nΔ² every step) and Lemma 1
// (P_t ≤ nY² + 5nΔ² forever), while an infeasible one diverges under any
// protocol.  The sentinel watches the drift two ways at once:
//
//  * statistically — an EWMA of the per-step drift plus a one-sided
//    Page–Hinkley cumulative test with allowance δ = 5nΔ².  Because
//    Property 1 caps every clean-LGG step at exactly δ, the Page–Hinkley
//    statistic is identically 0 on any unsaturated trajectory; only
//    super-Property-1 growth (overload, surges) can accumulate toward the
//    alarm threshold λ.
//  * exactly — a feasibility certificate from the Section-II analysis
//    (max-flow + ε-margin search) computed at construction and re-checked
//    (max-flow only, rate-limited) when the topology changes.  While the
//    certificate holds *and* observed arrivals have respected the declared
//    rates for a full compliance window, Lemma 1 is in force and the
//    sentinel refuses to report overload unless P_t outright exceeds the
//    Lemma-1 state bound — which a clean run provably never does.
//
// observe() is gap-tolerant: callers may feed every step (the admission
// governor) or every check_every steps (RunSupervisor, chaos::Runner); the
// statistic is normalized by the elapsed span so both see the same test.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "core/sd_network.hpp"

namespace lgg::core {
struct TopologyDelta;
}  // namespace lgg::core

namespace lgg::flow {
class IncrementalMaxFlow;
}  // namespace lgg::flow

namespace lgg::control {

enum class SaturationMode : int {
  kUnsaturated = 0,
  kNearSaturated = 1,
  kOverloaded = 2,
};

[[nodiscard]] std::string_view to_string(SaturationMode mode);

struct SentinelOptions {
  /// EWMA smoothing for the normalized per-step drift estimate.
  double ewma_alpha = 1.0 / 64.0;
  /// Page–Hinkley allowance, as a multiple of the Property-1 growth bound
  /// 5nΔ².  1.0 means a clean LGG run keeps the statistic at exactly 0.
  double ph_allowance = 1.0;
  /// Alarm threshold λ, as a multiple of 5nΔ²: kOverloaded at PH > λ,
  /// kNearSaturated at PH > λ/2, with hysteresis on the way down (an
  /// overloaded sentinel stays overloaded until PH < λ/4).
  double ph_threshold = 8.0;
  /// Steps of rate-compliant offers required before the feasibility
  /// certificate overrides the statistical verdict.
  TimeStep compliance_window = 64;
  /// Statistical divergence floor: diverged() only reports on the
  /// statistical path once P_t exceeds max(this, 256·(5nΔ²)²).  Keeps the
  /// unified verdict from firing earlier than the legacy raw thresholds on
  /// bounded-noise runs.
  double divergence_floor = 1e9;
};

class SaturationSentinel {
 public:
  /// Runs the exact feasibility analysis once at construction; degenerate
  /// instances the analyzer rejects simply get no certificate (the
  /// statistical path still works).
  explicit SaturationSentinel(const core::SdNetwork& net,
                              SentinelOptions options = {});

  /// Feed the potential observed at step t.  Gaps are fine; t must be
  /// non-decreasing.
  void observe(TimeStep t, double potential);

  /// Arrival compliance feedback: call when a source offered more than its
  /// declared in-rate this step (fault surges, hostile arrivals).  Resets
  /// the compliance streak, suspending the certificate override.
  void note_noncompliant_offer() { compliant_streak_ = 0; }

  /// The topology changed: the unsaturated certificate is dropped until
  /// refresh_certificate() re-checks.  Conservative — churn can only shrink
  /// the feasible region.
  void mark_certificate_stale() { cert_unsaturated_ = false; }

  /// Exact re-check on the current active-edge mask (nullptr = all edges).
  /// Mask-restricted instances get a feasibility-only certificate from one
  /// max-flow; the full ε-margin claim returns only with the full topology.
  /// Drops the warm-started engines, so the next patch_certificate rebuilds.
  void refresh_certificate(const graph::EdgeMask* mask);

  /// Incremental alternative to refresh_certificate: patches two
  /// warm-started max-flow engines (flow/incremental.hpp) — the exact-rate
  /// instance for Definition-3 feasibility and the (1+1/kEpsilonDenom)-
  /// scaled margin instance for Definition-4 unsaturation — across this
  /// step's mutations.  `mask` is the step's active mask (nullptr = all
  /// edges); `churn` carries the step's rate changes (may be nullptr).
  /// Mask diffs are self-healing (the engines are reconciled against the
  /// actual mask, whatever was missed), so the certificate is exact after
  /// every call; only the augmentation work is O(affected region).  Unlike
  /// refresh_certificate, the unsaturated verdict stays live on restricted
  /// masks — it is exact for the current topology.  After a rate change the
  /// construction-time Lemma-1 state bound no longer applies and is
  /// dropped (state_bound() goes empty; the certified override then never
  /// reports overload, which the exact certificate justifies).
  void patch_certificate(const graph::EdgeMask* mask,
                         const core::TopologyDelta* churn);

  /// Patch-vs-recompute accounting for patch_certificate /
  /// refresh_certificate (checkpointed, so a resumed run reports the same
  /// totals as an uninterrupted one).
  [[nodiscard]] std::uint64_t certificate_patches() const {
    return cert_patches_;
  }
  [[nodiscard]] std::uint64_t certificate_recomputes() const {
    return cert_recomputes_;
  }

  [[nodiscard]] SaturationMode mode() const { return mode_; }
  /// EWMA of the normalized per-step drift of P_t.
  [[nodiscard]] double drift_estimate() const { return ewma_; }
  [[nodiscard]] double page_hinkley() const { return ph_; }
  /// Steps spent in the current mode.
  [[nodiscard]] TimeStep time_in_mode() const { return time_in_mode_; }
  /// The Property-1 growth bound 5nΔ² the test is calibrated against.
  [[nodiscard]] double growth_bound() const { return growth_; }
  /// Lemma-1 state bound, when the instance is certified unsaturated.
  [[nodiscard]] std::optional<double> state_bound() const {
    return state_bound_;
  }
  [[nodiscard]] bool certificate_feasible() const { return cert_feasible_; }
  [[nodiscard]] bool certificate_unsaturated() const {
    return cert_unsaturated_;
  }

  /// Unified divergence verdict shared by RunSupervisor and chaos::Runner:
  /// the caller's raw bound stays as a compatibility backstop; on top of it
  /// the sentinel reports divergence when it is in kOverloaded with the
  /// potential past the statistical floor.  `raw_bound <= 0` disables the
  /// backstop.
  [[nodiscard]] bool diverged(double raw_bound, double potential) const;
  /// Human-readable reason for a diverged() == true verdict.
  [[nodiscard]] std::string describe_divergence(double raw_bound,
                                                double potential) const;

  SaturationSentinel(SaturationSentinel&&) noexcept;
  SaturationSentinel& operator=(SaturationSentinel&&) noexcept;
  ~SaturationSentinel();

  void save_state(std::ostream& out) const;
  void load_state(std::istream& in);

 private:
  void classify(TimeStep span, double potential);
  /// (Re)builds the two incremental engines from the current network and
  /// mask.  Counts toward cert_recomputes_ only when `count` is set — the
  /// silent path reconstructs engines a checkpoint could not carry, keeping
  /// the counters identical to an uninterrupted run.
  void rebuild_engines(const graph::EdgeMask* mask, bool count);
  /// Reconciles both engines' edge activations with `mask` and reads off
  /// the certificate.
  void sync_engines(const graph::EdgeMask* mask);

  const core::SdNetwork* net_;
  SentinelOptions options_;
  double growth_ = 0.0;                // 5 n Δ²
  double floor_ = 0.0;                 // statistical divergence floor
  std::optional<double> state_bound_;  // Lemma 1, when certified

  bool cert_feasible_ = false;
  bool cert_unsaturated_ = false;

  // Warm-started certificate engines (null until the first
  // patch_certificate, or when the analyzer rejects the instance).  Their
  // flow state is not checkpointed: load_state drops them and the next
  // patch silently rebuilds from the restored network + mask.
  std::unique_ptr<flow::IncrementalMaxFlow> cert_exact_;
  std::unique_ptr<flow::IncrementalMaxFlow> cert_margin_;
  std::uint64_t cert_patches_ = 0;
  std::uint64_t cert_recomputes_ = 0;

  bool has_prev_ = false;
  TimeStep prev_t_ = 0;
  double prev_potential_ = 0.0;
  double ewma_ = 0.0;
  double ph_ = 0.0;
  TimeStep compliant_streak_ = 0;
  SaturationMode mode_ = SaturationMode::kUnsaturated;
  TimeStep time_in_mode_ = 0;
};

}  // namespace lgg::control
