#include "control/sentinel.hpp"

#include <algorithm>
#include <sstream>

#include "common/binio.hpp"
#include "common/require.hpp"
#include "core/bounds.hpp"
#include "core/flow_plan.hpp"
#include "core/topology_delta.hpp"
#include "flow/incremental.hpp"

namespace lgg::control {

// Out of line so the unique_ptr<IncrementalMaxFlow> members see a complete
// type.
SaturationSentinel::SaturationSentinel(SaturationSentinel&&) noexcept =
    default;
SaturationSentinel& SaturationSentinel::operator=(
    SaturationSentinel&&) noexcept = default;
SaturationSentinel::~SaturationSentinel() = default;

std::string_view to_string(SaturationMode mode) {
  switch (mode) {
    case SaturationMode::kUnsaturated: return "unsaturated";
    case SaturationMode::kNearSaturated: return "near_saturated";
    case SaturationMode::kOverloaded: return "overloaded";
  }
  return "?";
}

SaturationSentinel::SaturationSentinel(const core::SdNetwork& net,
                                       SentinelOptions options)
    : net_(&net), options_(options) {
  LGG_REQUIRE(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0,
              "sentinel: ewma_alpha outside (0, 1]");
  LGG_REQUIRE(options_.ph_allowance > 0.0, "sentinel: ph_allowance <= 0");
  LGG_REQUIRE(options_.ph_threshold > 0.0, "sentinel: ph_threshold <= 0");
  LGG_REQUIRE(options_.compliance_window >= 0,
              "sentinel: negative compliance_window");
  const double n = static_cast<double>(net.node_count());
  const double delta = static_cast<double>(net.max_degree());
  growth_ = std::max(1.0, 5.0 * n * delta * delta);
  floor_ = std::max(options_.divergence_floor, 256.0 * growth_ * growth_);
  // The exact certificate: max-flow feasibility + the ε-margin search.
  // Degenerate instances the analyzer rejects run certificate-free.
  try {
    const flow::FeasibilityReport report = core::analyze(net);
    cert_feasible_ = report.feasible;
    cert_unsaturated_ = report.unsaturated;
    if (report.unsaturated) {
      state_bound_ = core::unsaturated_bounds(net, report).state;
    }
  } catch (const std::exception&) {
    cert_feasible_ = false;
    cert_unsaturated_ = false;
  }
}

void SaturationSentinel::rebuild_engines(const graph::EdgeMask* mask,
                                         bool count) {
  cert_exact_.reset();
  cert_margin_.reset();
  const std::vector<flow::RatedNode> sources = net_->source_rates();
  const std::vector<flow::RatedNode> sinks = net_->sink_rates();
  // The margin instance is feasible_at_scale's integer encoding of
  // Definition 4 at the smallest representable ε = 1/kEpsilonDenom: every
  // capacity scaled by the denominator, source rates by denominator + 1.
  flow::ExtendedGraphOptions margin;
  margin.edge_capacity = flow::kEpsilonDenom;
  margin.sink_scale = flow::kEpsilonDenom;
  margin.source_scale = flow::kEpsilonDenom + 1;
  cert_exact_ = std::make_unique<flow::IncrementalMaxFlow>(
      net_->topology(), sources, sinks, flow::ExtendedGraphOptions{}, mask);
  cert_margin_ = std::make_unique<flow::IncrementalMaxFlow>(
      net_->topology(), sources, sinks, margin, mask);
  if (count) ++cert_recomputes_;
}

void SaturationSentinel::sync_engines(const graph::EdgeMask* mask) {
  const EdgeId edges = net_->topology().edge_count();
  for (EdgeId e = 0; e < edges; ++e) {
    const bool active = mask == nullptr || mask->active(e);
    if (cert_exact_->edge_active(e) != active) {
      cert_exact_->set_edge_active(e, active);
      cert_margin_->set_edge_active(e, active);
    }
  }
  cert_feasible_ = cert_exact_->saturates_sources();
  cert_unsaturated_ = cert_feasible_ && cert_margin_->saturates_sources();
}

void SaturationSentinel::patch_certificate(const graph::EdgeMask* mask,
                                           const core::TopologyDelta* churn) {
  if (cert_exact_ == nullptr || cert_margin_ == nullptr) {
    // First call, post-restore, or post-refresh: there is no warm state to
    // patch.  Rebuild without counting a recompute so the patch/recompute
    // totals of a resumed run match an uninterrupted one.
    try {
      rebuild_engines(mask, /*count=*/false);
    } catch (const std::exception&) {
      cert_exact_.reset();
      cert_margin_.reset();
      cert_feasible_ = false;
      cert_unsaturated_ = false;
      return;
    }
  } else if (churn != nullptr) {
    for (const core::TopologyDelta::RateChange& rc : churn->rates) {
      cert_exact_->set_source_rate(rc.node, rc.after.in);
      cert_exact_->set_sink_rate(rc.node, rc.after.out);
      cert_margin_->set_source_rate(rc.node, rc.after.in);
      cert_margin_->set_sink_rate(rc.node, rc.after.out);
    }
  }
  if (churn != nullptr && !churn->rates.empty()) {
    // The construction-time Lemma-1 bound was computed from the original
    // rates' Y and ε; after a rate change it no longer applies.  While the
    // exact certificate holds, the certified override simply never reports
    // overload — which the certificate justifies on its own.
    state_bound_.reset();
  }
  sync_engines(mask);
  ++cert_patches_;
}

void SaturationSentinel::refresh_certificate(const graph::EdgeMask* mask) {
  // A from-scratch check invalidates the warm engines (their rates may
  // drift from the network's if churn continues past this point); the next
  // patch_certificate rebuilds them.
  cert_exact_.reset();
  cert_margin_.reset();
  ++cert_recomputes_;
  if (mask == nullptr || mask->active_count() == mask->size()) {
    // Full topology back: one max-flow suffices for feasibility, and the
    // construction-time ε-margin (topology-determined) applies again.
    try {
      const flow::FeasibilityReport report = core::analyze(*net_);
      cert_feasible_ = report.feasible;
      cert_unsaturated_ = report.unsaturated;
      return;
    } catch (const std::exception&) {
      cert_feasible_ = false;
      cert_unsaturated_ = false;
      return;
    }
  }
  // Restricted mask: a single max-flow gives exact feasibility at the
  // declared rates, but no ε margin — so no Lemma-1 override.
  try {
    const core::FlowPlan plan = core::build_flow_plan(*net_, mask);
    cert_feasible_ = plan.value >= net_->arrival_rate();
  } catch (const std::exception&) {
    cert_feasible_ = false;
  }
  cert_unsaturated_ = false;
}

void SaturationSentinel::observe(TimeStep t, double potential) {
  if (!has_prev_) {
    has_prev_ = true;
    prev_t_ = t;
    prev_potential_ = potential;
    return;
  }
  LGG_REQUIRE(t >= prev_t_, "sentinel: time went backwards");
  const TimeStep span = std::max<TimeStep>(1, t - prev_t_);
  classify(span, potential);
  prev_t_ = t;
  prev_potential_ = potential;
}

void SaturationSentinel::classify(TimeStep span, double potential) {
  const double dp = potential - prev_potential_;
  const double per_step = dp / static_cast<double>(span);
  ewma_ += options_.ewma_alpha * (per_step - ewma_);
  // One-sided Page–Hinkley on the drift with allowance δ = allowance·5nΔ²:
  // PH accumulates only growth in excess of what Property 1 permits, so a
  // clean unsaturated run keeps it at exactly zero.
  const double allowance =
      options_.ph_allowance * growth_ * static_cast<double>(span);
  ph_ = std::max(0.0, ph_ + dp - allowance);
  compliant_streak_ += span;

  const double lambda = options_.ph_threshold * growth_;
  SaturationMode next;
  if (cert_unsaturated_ && compliant_streak_ >= options_.compliance_window) {
    // Certified regime: Lemma 1 is in force; only an outright state-bound
    // breach (impossible for a clean LGG run) counts as overload.
    next = (state_bound_.has_value() && potential > *state_bound_)
               ? SaturationMode::kOverloaded
               : SaturationMode::kUnsaturated;
  } else if (mode_ == SaturationMode::kOverloaded) {
    // Hysteresis: leave overload only once the statistic has drained well
    // below the alarm threshold.
    next = ph_ > lambda / 4.0
               ? SaturationMode::kOverloaded
               : (ph_ > lambda / 8.0 ? SaturationMode::kNearSaturated
                                     : SaturationMode::kUnsaturated);
  } else {
    next = ph_ > lambda
               ? SaturationMode::kOverloaded
               : (ph_ > lambda / 2.0 ? SaturationMode::kNearSaturated
                                     : SaturationMode::kUnsaturated);
  }
  if (next != mode_) {
    mode_ = next;
    time_in_mode_ = 0;
  } else {
    time_in_mode_ += span;
  }
}

bool SaturationSentinel::diverged(double raw_bound, double potential) const {
  if (raw_bound > 0.0 && potential > raw_bound) return true;
  return mode_ == SaturationMode::kOverloaded && potential > floor_;
}

std::string SaturationSentinel::describe_divergence(double raw_bound,
                                                    double potential) const {
  std::ostringstream msg;
  if (raw_bound > 0.0 && potential > raw_bound) {
    msg << "P_t = " << potential << " exceeded the divergence bound "
        << raw_bound;
  } else {
    msg << "saturation sentinel: P_t = " << potential
        << " past the statistical floor " << floor_
        << " while overloaded (Page-Hinkley " << ph_ << ", drift estimate "
        << ewma_ << ")";
  }
  return msg.str();
}

void SaturationSentinel::save_state(std::ostream& out) const {
  binio::write_u8(out, has_prev_ ? 1 : 0);
  binio::write_i64(out, prev_t_);
  binio::write_f64(out, prev_potential_);
  binio::write_f64(out, ewma_);
  binio::write_f64(out, ph_);
  binio::write_i64(out, compliant_streak_);
  binio::write_u8(out, static_cast<std::uint8_t>(mode_));
  binio::write_i64(out, time_in_mode_);
  binio::write_u8(out, cert_feasible_ ? 1 : 0);
  binio::write_u8(out, cert_unsaturated_ ? 1 : 0);
  binio::write_u8(out, state_bound_.has_value() ? 1 : 0);
  binio::write_f64(out, state_bound_.value_or(0.0));
  binio::write_u64(out, cert_patches_);
  binio::write_u64(out, cert_recomputes_);
}

void SaturationSentinel::load_state(std::istream& in) {
  has_prev_ = binio::read_u8(in) != 0;
  prev_t_ = binio::read_i64(in);
  prev_potential_ = binio::read_f64(in);
  ewma_ = binio::read_f64(in);
  ph_ = binio::read_f64(in);
  compliant_streak_ = binio::read_i64(in);
  const std::uint8_t mode = binio::read_u8(in);
  LGG_REQUIRE(mode <= 2, "sentinel state: bad mode");
  mode_ = static_cast<SaturationMode>(mode);
  time_in_mode_ = binio::read_i64(in);
  cert_feasible_ = binio::read_u8(in) != 0;
  cert_unsaturated_ = binio::read_u8(in) != 0;
  const bool has_bound = binio::read_u8(in) != 0;
  const double bound = binio::read_f64(in);
  state_bound_ = has_bound ? std::optional<double>(bound) : std::nullopt;
  cert_patches_ = binio::read_u64(in);
  cert_recomputes_ = binio::read_u64(in);
  // The engines' flow state is not part of the checkpoint; the next
  // patch_certificate rebuilds from the restored network + mask.
  cert_exact_.reset();
  cert_margin_.reset();
}

}  // namespace lgg::control
