#include "control/brownout.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace lgg::control {

void BrownoutPolicy::apply(std::span<const Cap> rates, double g,
                           std::span<double> out) const {
  LGG_REQUIRE(rates.size() == out.size(), "brownout: size mismatch");
  g = std::clamp(g, 0.0, 1.0);
  std::fill(out.begin(), out.end(), 1.0);
  if (g >= 1.0 || rates.empty()) return;

  if (!options_.ordered || g < options_.min_multiplier) {
    // Uniform shed: also the fallback when even min_multiplier on every
    // source cannot realize g.
    std::fill(out.begin(), out.end(), g);
    return;
  }

  double total = 0.0;
  for (const Cap r : rates) total += static_cast<double>(r);
  if (total <= 0.0) return;

  // Walk the ladder from the lowest-priority (last) source: each gives up
  // at most (1 - min_multiplier) of its rate before the next one is asked.
  double excess = (1.0 - g) * total;
  for (std::size_t i = rates.size(); i-- > 0 && excess > 0.0;) {
    const double rate = static_cast<double>(rates[i]);
    if (rate <= 0.0) continue;
    const double reducible = (1.0 - options_.min_multiplier) * rate;
    const double take = std::min(excess, reducible);
    out[i] = 1.0 - take / rate;
    excess -= take;
  }
}

}  // namespace lgg::control
