// Ordered degradation of source admission.
//
// When the governor has to realize a global admission factor g < 1, two
// ladders are available:
//
//  * ordered (the brownout ladder): defer the lowest-priority sources first
//    — priority is position in the network's ascending source list, so the
//    highest node ids shed first — each pushed down to min_multiplier
//    before the next-higher-priority source is touched (the boundary source
//    gets a partial multiplier).  If even full deferral of every source
//    cannot reach g (g < min_multiplier), the ladder falls back to uniform.
//  * uniform: every source gets multiplier g.
//
// The computation is a pure function of (rates, g), so it is recomputed
// each step from checkpointed inputs rather than persisted.
#pragma once

#include <span>

#include "common/types.hpp"

namespace lgg::control {

class BrownoutPolicy {
 public:
  struct Options {
    /// Floor any single source can be deferred to before the ladder moves
    /// on; also the uniform-fallback trigger.
    double min_multiplier = 1.0 / 16.0;
    /// false = uniform shed only (no priority ordering).
    bool ordered = true;
  };

  BrownoutPolicy() = default;
  explicit BrownoutPolicy(Options options) : options_(options) {}

  [[nodiscard]] const Options& options() const { return options_; }

  /// Fills `out[i]` with the admission multiplier for the source whose
  /// declared rate is `rates[i]`, such that Σ out[i]·rates[i] ≈ g·Σ rates.
  /// `out` and `rates` are parallel to the network's ascending source list;
  /// index 0 is the highest-priority source.  g is clamped to [0, 1].
  void apply(std::span<const Cap> rates, double g,
             std::span<double> out) const;

 private:
  Options options_{};
};

}  // namespace lgg::control
