// Adaptive admission control driven by the saturation sentinel.
//
// The governor gates every source's injection through a token-bucket
// multiplier m ∈ [min_multiplier, 1] updated AIMD-style from the sentinel's
// verdict:
//
//  * multiplicative shed — on kOverloaded, m ← β·m (once per hold window),
//    cutting the offered load until the Page–Hinkley statistic drains;
//  * additive probe — after a quiet window of kUnsaturated with the drift
//    estimate at or below target_eps·5nΔ², m ← m + probe_increment, and it
//    snaps to exactly 1.0 at the top.
//
// At m == 1.0 admit() returns `offered` untouched — no floating point ever
// meets the packet counts — so a feasible network that is never classified
// overloaded (guaranteed for clean LGG runs by the sentinel's certificate
// override plus the Property-1 calibration of the Page–Hinkley test) sheds
// zero packets and its trajectory is bitwise-identical to an ungoverned
// run.  Below 1.0, per-source Bresenham-style fractional credits make the
// gating deterministic and exactly checkpointable.
//
// Degradation order comes from BrownoutPolicy: uniform by default, the
// ordered defer-lowest-priority-first ladder when `brownout` is set.
#pragma once

#include <span>
#include <vector>

#include "control/brownout.hpp"
#include "control/sentinel.hpp"
#include "core/admission.hpp"
#include "obs/registry.hpp"

namespace lgg::control {

struct GovernorOptions {
  /// Tolerated residual drift, as a fraction of the Property-1 growth bound
  /// 5nΔ², below which the probe path re-admits.
  double target_eps = 0.05;
  /// Multiplicative decrease factor applied on kOverloaded.
  double beta = 0.5;
  /// Additive probe increment toward full admission.
  double probe_increment = 1.0 / 16.0;
  /// Floor for the global multiplier (and the brownout ladder's per-source
  /// floor): the governor never starves a source completely.
  double min_multiplier = 1.0 / 16.0;
  /// Minimum steps between consecutive multiplier changes (either
  /// direction) — the AIMD hysteresis.
  TimeStep hold_steps = 32;
  /// Steps of uninterrupted kUnsaturated required before probing starts.
  TimeStep quiet_steps = 128;
  /// Minimum steps between exact certificate re-checks after churn.  Only
  /// consulted when incremental_certificates is off — the patch path keeps
  /// the certificate continuously valid with no backoff window.
  TimeStep certificate_backoff = 64;
  /// Patch the feasibility certificate incrementally on every topology
  /// change (warm-started max-flow, O(affected region)) instead of marking
  /// it stale and re-solving from scratch after certificate_backoff steps.
  /// The verdict is then valid on every step — churn never opens a window
  /// where the sentinel runs certificate-free.
  bool incremental_certificates = true;
  /// Use the ordered brownout ladder instead of uniform shedding.
  bool brownout = false;
  SentinelOptions sentinel;
};

class AdmissionGovernor final : public core::AdmissionController {
 public:
  explicit AdmissionGovernor(const core::SdNetwork& net,
                             GovernorOptions options = {});

  void begin_step(const StepContext& ctx) override;
  PacketCount admit(NodeId v, Cap in_rate, PacketCount offered) override;
  [[nodiscard]] int mode() const override {
    return static_cast<int>(sentinel_.mode());
  }
  [[nodiscard]] PacketCount total_shed() const override { return total_shed_; }
  [[nodiscard]] double overload_bound() const override {
    return engaged_ ? overload_bound_ : 0.0;
  }
  void register_metrics(obs::MetricRegistry& registry) override;
  void save_state(std::ostream& out) const override;
  void load_state(std::istream& in) override;

  [[nodiscard]] const GovernorOptions& options() const { return options_; }
  [[nodiscard]] double multiplier() const { return multiplier_; }
  [[nodiscard]] const SaturationSentinel& sentinel() const {
    return sentinel_;
  }
  /// Fairness accounting, parallel to the network's ascending source list.
  [[nodiscard]] std::span<const PacketCount> offered_per_source() const {
    return offered_;
  }
  [[nodiscard]] std::span<const PacketCount> shed_per_source() const {
    return shed_;
  }

 private:
  [[nodiscard]] std::size_t source_index(NodeId v) const;

  GovernorOptions options_;
  SaturationSentinel sentinel_;
  BrownoutPolicy policy_;

  std::vector<NodeId> sources_;          // ascending, from the network
  std::vector<Cap> rates_;               // declared in-rates, parallel
  std::vector<std::int32_t> source_of_;  // node id -> source index, -1

  double multiplier_ = 1.0;
  TimeStep last_change_t_ = 0;
  bool has_changed_ = false;  // last_change_t_ meaningful only after first
  bool engaged_ = false;      // shed at least once since construction
  double overload_bound_ = 0.0;
  std::uint64_t last_topology_version_ = 0;
  bool cert_dirty_ = false;
  TimeStep last_cert_t_ = 0;

  std::vector<double> effective_;   // per-source multiplier (brownout)
  std::vector<double> credit_;      // fractional admission credits
  std::vector<PacketCount> offered_;
  std::vector<PacketCount> shed_;
  PacketCount total_shed_ = 0;

  obs::Gauge* multiplier_gauge_ = nullptr;
  obs::Gauge* drift_gauge_ = nullptr;
  obs::Gauge* mode_gauge_ = nullptr;
  obs::Gauge* time_in_mode_gauge_ = nullptr;
  obs::Gauge* cert_patches_gauge_ = nullptr;
  obs::Gauge* cert_recomputes_gauge_ = nullptr;
  obs::Gauge* cert_age_gauge_ = nullptr;
  obs::Counter* shed_counter_ = nullptr;
};

}  // namespace lgg::control
